//! String-to-id dictionary encoding for dimension values.

use std::collections::HashMap;

/// A per-dimension dictionary mapping raw string values to dense `u32` ids.
///
/// Encoding dimension values densely is what allows the cube algorithms to
/// partition with counting sort and AHT to assign index bits per attribute.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Encodes `value`, assigning a fresh id on first sight.
    pub fn encode(&mut self, value: &str) -> u32 {
        if let Some(&id) = self.index.get(value) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(value.to_owned());
        self.index.insert(value.to_owned(), id);
        id
    }

    /// Looks up an id without inserting.
    pub fn get(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Decodes an id back to its string value.
    pub fn decode(&self, id: u32) -> Option<&str> {
        self.values.get(id as usize).map(String::as_str)
    }

    /// Number of distinct values seen so far (the dimension cardinality).
    pub fn len(&self) -> u32 {
        self.values.len() as u32
    }

    /// True when no value has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.encode("Vancouver");
        let b = d.encode("Seattle");
        let a2 = d.encode("Vancouver");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.decode(a), Some("Vancouver"));
        assert_eq!(d.decode(b), Some("Seattle"));
        assert_eq!(d.decode(99), None);
    }

    #[test]
    fn get_does_not_insert() {
        let mut d = Dictionary::new();
        assert_eq!(d.get("x"), None);
        assert!(d.is_empty());
        d.encode("x");
        assert_eq!(d.get("x"), Some(0));
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        for v in ["c", "a", "b"] {
            d.encode(v);
        }
        let got: Vec<_> = d.iter().collect();
        assert_eq!(got, vec![(0, "c"), (1, "a"), (2, "b")]);
    }
}
