//! Minimal CSV loading/saving with dictionary encoding.
//!
//! Good enough for the runnable examples to ingest user data; not a general
//! CSV implementation (no quoting/escaping — the weather-style inputs the
//! paper uses are plain comma-separated fields).

use crate::dictionary::Dictionary;
use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::{Dimension, Schema};
use std::io::{BufRead, BufReader, Read, Write};

/// A relation together with the dictionaries that encoded it, so results can
/// be decoded back to the original strings.
#[derive(Debug)]
pub struct EncodedTable {
    /// The encoded fact table.
    pub relation: Relation,
    /// One dictionary per dimension, in schema order.
    pub dictionaries: Vec<Dictionary>,
}

/// Reads CSV from `input`.
///
/// * The first line must be a header naming every column.
/// * `dim_cols` names the columns to treat as CUBE dimensions (their values
///   are dictionary-encoded in order of first appearance).
/// * `measure_col` names the numeric measure column; pass `None` to use a
///   constant measure of 1 (pure COUNT cubes).
pub fn read_csv<R: Read>(
    input: R,
    dim_cols: &[&str],
    measure_col: Option<&str>,
) -> Result<EncodedTable, DataError> {
    let mut lines = BufReader::new(input).lines();
    let header = lines.next().ok_or_else(|| DataError::Csv {
        line: 1,
        message: "missing header".into(),
    })??;
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    let col_of = |name: &str, line: usize| -> Result<usize, DataError> {
        names
            .iter()
            .position(|&n| n == name)
            .ok_or_else(|| DataError::Csv {
                line,
                message: format!("column {name:?} not in header"),
            })
    };
    let dim_idx: Vec<usize> = dim_cols
        .iter()
        .map(|c| col_of(c, 1))
        .collect::<Result<_, _>>()?;
    let measure_idx = measure_col.map(|c| col_of(c, 1)).transpose()?;

    let mut dictionaries: Vec<Dictionary> = dim_cols.iter().map(|_| Dictionary::new()).collect();
    // Two passes would let us size the schema first; instead encode into
    // temporary storage and build the schema from final dictionary sizes.
    let mut rows: Vec<(Vec<u32>, i64)> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let lineno = lineno + 2; // 1-based, after the header
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != names.len() {
            return Err(DataError::Csv {
                line: lineno,
                message: format!("expected {} fields, got {}", names.len(), fields.len()),
            });
        }
        let mut encoded = Vec::with_capacity(dim_idx.len());
        for (d, &i) in dim_idx.iter().enumerate() {
            encoded.push(dictionaries[d].encode(fields[i]));
        }
        let measure = match measure_idx {
            Some(i) => fields[i].parse::<i64>().map_err(|e| DataError::Csv {
                line: lineno,
                message: format!("bad measure {:?}: {e}", fields[i]),
            })?,
            None => 1,
        };
        rows.push((encoded, measure));
    }

    let dims: Vec<Dimension> = dim_cols
        .iter()
        .zip(&dictionaries)
        .map(|(name, dict)| Dimension::new(*name, dict.len().max(1)))
        .collect();
    let schema = Schema::new(dims, measure_col.unwrap_or("count"))?;
    if rows.len() > Relation::MAX_ROWS {
        return Err(DataError::TooManyRows {
            rows: rows.len(),
            max: Relation::MAX_ROWS,
        });
    }
    let mut relation = Relation::with_capacity(schema, rows.len());
    for (encoded, measure) in rows {
        relation.push_row_unchecked(&encoded, measure);
    }
    Ok(EncodedTable {
        relation,
        dictionaries,
    })
}

/// Writes a relation as CSV, decoding values through the dictionaries when
/// provided (otherwise raw ids are written).
pub fn write_csv<W: Write>(
    out: &mut W,
    table: &Relation,
    dictionaries: Option<&[Dictionary]>,
) -> Result<(), DataError> {
    let names: Vec<String> = table
        .schema()
        .dims()
        .iter()
        .map(|d| d.name.clone())
        .collect();
    writeln!(out, "{},{}", names.join(","), table.schema().measure_name())?;
    for (row, m) in table.rows() {
        for (d, &v) in row.iter().enumerate() {
            if d > 0 {
                write!(out, ",")?;
            }
            match dictionaries
                .and_then(|ds| ds.get(d))
                .and_then(|dict| dict.decode(v))
            {
                Some(s) => write!(out, "{s}")?,
                None => write!(out, "{v}")?,
            }
        }
        writeln!(out, ",{m}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
item,location,customer,sales
Sony TV,Seattle,joe,700
JVC TV,Vancouver,fred,400
Sony TV,Seattle,sally,700
JVC TV,LA,sally,400
Sony TV,Seattle,bob,700
Panasonic VCR,Vancouver,tom,250
";

    #[test]
    fn reads_the_papers_example_relation() {
        let t = read_csv(SAMPLE.as_bytes(), &["item", "location"], Some("sales")).unwrap();
        assert_eq!(t.relation.len(), 6);
        assert_eq!(t.relation.arity(), 2);
        assert_eq!(t.relation.schema().cardinality(0), 3);
        assert_eq!(t.relation.schema().cardinality(1), 3);
        assert_eq!(t.dictionaries[0].decode(0), Some("Sony TV"));
        assert_eq!(t.relation.total_measure(), 3150);
    }

    #[test]
    fn count_cube_defaults_measure_to_one() {
        let t = read_csv(SAMPLE.as_bytes(), &["customer"], None).unwrap();
        assert_eq!(t.relation.total_measure(), 6);
        assert_eq!(t.relation.schema().cardinality(0), 5);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let err = read_csv(SAMPLE.as_bytes(), &["nope"], None).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn ragged_rows_are_an_error() {
        let bad = "a,b\n1,2\n3\n";
        let err = read_csv(bad.as_bytes(), &["a"], None).unwrap_err();
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn bad_measure_is_an_error() {
        let bad = "a,m\nx,notanumber\n";
        let err = read_csv(bad.as_bytes(), &["a"], Some("m")).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn roundtrip_through_write() {
        let t = read_csv(SAMPLE.as_bytes(), &["item", "location"], Some("sales")).unwrap();
        let mut buf = Vec::new();
        write_csv(&mut buf, &t.relation, Some(&t.dictionaries)).unwrap();
        let again = read_csv(buf.as_slice(), &["item", "location"], Some("sales")).unwrap();
        assert_eq!(again.relation, t.relation);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let data = "a,m\nx,1\n\n y ,2\n";
        let t = read_csv(data.as_bytes(), &["a"], Some("m")).unwrap();
        assert_eq!(t.relation.len(), 2);
        assert_eq!(t.dictionaries[0].decode(1), Some("y"));
    }
}
