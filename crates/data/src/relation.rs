//! Row-major, dictionary-encoded fact tables.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::error::DataError;
use crate::schema::Schema;
use rand::seq::SliceRandom;
use rand::Rng;

/// A fact table: `n` rows of `arity` encoded dimension values plus one
/// `i64` measure per row.
///
/// Storage is row-major (`dims` has stride `arity`) which is what the BUC
/// family of algorithms wants: they repeatedly re-partition contiguous runs
/// of tuples on one attribute at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    dims: Vec<u32>,
    measures: Vec<i64>,
}

impl Relation {
    /// The largest supported row count. The cube kernels index rows with
    /// `u32` (half the memory traffic of `usize` on the partitioning hot
    /// path), so a relation must never outgrow the `u32` domain — beyond
    /// it, `rel.len() as u32` truncates and distinct rows alias the same
    /// index. Construction paths reject oversized inputs with
    /// [`DataError::TooManyRows`] instead.
    pub const MAX_ROWS: usize = u32::MAX as usize;

    /// The dimension code reserved as an in-band sentinel by the cube
    /// kernels: the skiplist arena uses `u32::MAX` as its NIL link and
    /// pipesort uses it as column fill. A real dictionary code must never
    /// equal it, so every ingest path ([`Relation::push_row`] via the
    /// cardinality check, [`Relation::extend_from`] and
    /// [`Relation::apply_delta`] explicitly) rejects rows carrying it with
    /// [`DataError::ReservedCode`].
    pub const RESERVED_CODE: u32 = u32::MAX;

    /// Checks that a relation of `rows` rows plus `additional` more stays
    /// within [`Self::MAX_ROWS`].
    pub(crate) fn check_row_budget(rows: usize, additional: usize) -> Result<(), DataError> {
        match rows.checked_add(additional) {
            Some(total) if total <= Self::MAX_ROWS => Ok(()),
            _ => Err(DataError::TooManyRows {
                rows: rows.saturating_add(additional),
                max: Self::MAX_ROWS,
            }),
        }
    }

    /// Creates an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            dims: Vec::new(),
            measures: Vec::new(),
        }
    }

    /// Creates an empty relation pre-sized for `rows` rows.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            dims: Vec::with_capacity(rows * arity),
            measures: Vec::with_capacity(rows),
        }
    }

    /// The schema of this relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.measures.len()
    }

    /// True when the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.measures.is_empty()
    }

    /// Appends a row, validating arity, value ranges and the row budget.
    pub fn push_row(&mut self, values: &[u32], measure: i64) -> Result<(), DataError> {
        Self::check_row_budget(self.len(), 1)?;
        if values.len() != self.arity() {
            return Err(DataError::ArityMismatch {
                expected: self.arity(),
                got: values.len(),
            });
        }
        for (dim, &v) in values.iter().enumerate() {
            let card = self.schema.cardinality(dim);
            if v >= card {
                return Err(DataError::ValueOutOfRange {
                    dim,
                    value: v,
                    cardinality: card,
                });
            }
        }
        self.dims.extend_from_slice(values);
        self.measures.push(measure);
        Ok(())
    }

    /// Appends a row without range validation. The caller must guarantee
    /// values are within the schema cardinalities; used on hot paths
    /// (generator, partitioning) where the source is already validated.
    pub fn push_row_unchecked(&mut self, values: &[u32], measure: i64) {
        debug_assert_eq!(values.len(), self.arity());
        debug_assert!(self.len() < Self::MAX_ROWS, "row budget exceeded");
        self.dims.extend_from_slice(values);
        self.measures.push(measure);
    }

    /// Dimension values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        let a = self.arity();
        &self.dims[i * a..(i + 1) * a]
    }

    /// Measure of row `i`.
    #[inline]
    pub fn measure(&self, i: usize) -> i64 {
        self.measures[i]
    }

    /// Value of dimension `dim` in row `i`.
    #[inline]
    pub fn value(&self, i: usize, dim: usize) -> u32 {
        self.dims[i * self.arity() + dim]
    }

    /// Iterates `(dims, measure)` pairs in row order.
    pub fn rows(&self) -> RowsIter<'_> {
        RowsIter { rel: self, next: 0 }
    }

    /// Approximate on-disk/in-memory footprint of the relation in bytes
    /// (4 bytes per dimension value, 8 per measure). Drives the simulated
    /// disk and network cost models.
    pub fn byte_size(&self) -> u64 {
        (self.dims.len() * 4 + self.measures.len() * 8) as u64
    }

    /// Bytes per row under the same accounting.
    pub fn row_bytes(&self) -> u64 {
        (self.arity() * 4 + 8) as u64
    }

    /// Sorts rows lexicographically by the given dimension order.
    ///
    /// Top-down algorithms and BPP's breadth-first writer rely on prefix
    /// sorts; `order` may name any subset of dimensions.
    pub fn sort_by_dims(&mut self, order: &[usize]) {
        let n = self.len();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        {
            let arity = self.arity();
            let dims = &self.dims;
            idx.sort_unstable_by(|&a, &b| {
                let ra = &dims[a as usize * arity..a as usize * arity + arity];
                let rb = &dims[b as usize * arity..b as usize * arity + arity];
                for &d in order {
                    match ra[d].cmp(&rb[d]) {
                        std::cmp::Ordering::Equal => {}
                        o => return o,
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        self.apply_permutation(&idx);
    }

    fn apply_permutation(&mut self, idx: &[u32]) {
        let arity = self.arity();
        let mut new_dims = Vec::with_capacity(self.dims.len());
        let mut new_measures = Vec::with_capacity(self.measures.len());
        for &i in idx {
            let i = i as usize;
            new_dims.extend_from_slice(&self.dims[i * arity..(i + 1) * arity]);
            new_measures.push(self.measures[i]);
        }
        self.dims = new_dims;
        self.measures = new_measures;
    }

    /// Range-partitions the relation on `dim` into `parts` chunks by value
    /// range, as BPP's pre-processing step does. Chunk `j` receives rows
    /// whose value `v` satisfies `boundaries[j] <= v < boundaries[j+1]`.
    ///
    /// The split points divide the *value domain* evenly, so a skewed
    /// dimension yields unbalanced chunks — exactly the effect that hurts
    /// BPP in the paper's evaluation.
    pub fn range_partition(&self, dim: usize, parts: usize) -> Vec<Relation> {
        assert!(parts > 0, "parts must be positive");
        let card = self.schema.cardinality(dim) as u64;
        let mut out: Vec<Relation> = (0..parts)
            .map(|_| Relation::new(self.schema.clone()))
            .collect();
        for (row, m) in self.rows() {
            let v = row[dim] as u64;
            // Even split of the domain [0, card) into `parts` ranges.
            let j = ((v * parts as u64) / card.max(1)) as usize;
            out[j.min(parts - 1)].push_row_unchecked(row, m);
        }
        out
    }

    /// Ratio of the largest to the smallest *non-empty* chunk under
    /// [`Relation::range_partition`]. The paper reports a 40× ratio when
    /// partitioning the weather data on its 11th dimension.
    pub fn partition_skew(&self, dim: usize, parts: usize) -> f64 {
        let sizes: Vec<usize> = self
            .range_partition(dim, parts)
            .iter()
            .map(Relation::len)
            .filter(|&s| s > 0)
            .collect();
        if sizes.is_empty() {
            return 1.0;
        }
        let max = *sizes.iter().max().expect("non-empty") as f64;
        let min = *sizes.iter().min().expect("non-empty") as f64;
        max / min
    }

    /// Splits into `parts` chunks of near-equal row count, in row order
    /// (POL's initial horizontal data distribution across nodes).
    pub fn split_even(&self, parts: usize) -> Vec<Relation> {
        assert!(parts > 0, "parts must be positive");
        let n = self.len();
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for j in 0..parts {
            let end = n * (j + 1) / parts;
            let mut r = Relation::with_capacity(self.schema.clone(), end - start);
            for i in start..end {
                r.push_row_unchecked(self.row(i), self.measure(i));
            }
            out.push(r);
            start = end;
        }
        out
    }

    /// Copies rows `start..end` into a new relation (POL reads its local
    /// partition block by block).
    pub fn slice(&self, start: usize, end: usize) -> Relation {
        let end = end.min(self.len());
        let start = start.min(end);
        let mut r = Relation::with_capacity(self.schema.clone(), end - start);
        for i in start..end {
            r.push_row_unchecked(self.row(i), self.measure(i));
        }
        r
    }

    /// Draws a uniform sample of `k` rows without replacement.
    pub fn sample<R: Rng>(&self, k: usize, rng: &mut R) -> Relation {
        let k = k.min(self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.truncate(k);
        let mut r = Relation::with_capacity(self.schema.clone(), k);
        for i in idx {
            r.push_row_unchecked(self.row(i), self.measure(i));
        }
        r
    }

    /// Projects onto the given dimensions (in the given order), keeping the
    /// measure. Used by the dimensionality sweep of Figure 4.4.
    pub fn project(&self, dims: &[usize]) -> Result<Relation, DataError> {
        let schema = self.schema.project(dims)?;
        let mut r = Relation::with_capacity(schema, self.len());
        let mut buf = vec![0u32; dims.len()];
        for i in 0..self.len() {
            let row = self.row(i);
            for (o, &d) in dims.iter().enumerate() {
                buf[o] = row[d];
            }
            r.push_row_unchecked(&buf, self.measure(i));
        }
        Ok(r)
    }

    /// Appends all rows of `other`, validating every incoming value against
    /// *this* relation's schema.
    ///
    /// The check is all-or-nothing: the post-append total must stay within
    /// [`Self::MAX_ROWS`], no incoming value may carry the reserved sentinel
    /// code ([`Self::RESERVED_CODE`]) and every value must fit this schema's
    /// cardinalities. On any error the relation is left untouched. `other`
    /// may have wider declared cardinalities (e.g. a projection of a grown
    /// table) as long as the values actually present fit here.
    pub fn extend_from(&mut self, other: &Relation) -> Result<(), DataError> {
        if other.arity() != self.arity() {
            return Err(DataError::ArityMismatch {
                expected: self.arity(),
                got: other.arity(),
            });
        }
        Self::check_row_budget(self.len(), other.len())?;
        self.check_values(&other.dims, &self.schema.cardinalities())?;
        self.dims.extend_from_slice(&other.dims);
        self.measures.extend_from_slice(&other.measures);
        Ok(())
    }

    /// Validates a row-major value block (stride = arity) against the given
    /// cardinalities: no reserved sentinel codes, every value in range.
    fn check_values(&self, dims: &[u32], cards: &[u32]) -> Result<(), DataError> {
        let arity = self.arity();
        for (i, &v) in dims.iter().enumerate() {
            let dim = i % arity;
            if v == Self::RESERVED_CODE {
                return Err(DataError::ReservedCode { dim });
            }
            let card = cards[dim];
            if v >= card {
                return Err(DataError::ValueOutOfRange {
                    dim,
                    value: v,
                    cardinality: card,
                });
            }
        }
        Ok(())
    }

    /// Applies an append batch: widens the schema to the batch's extended
    /// cardinalities and appends its rows.
    ///
    /// The batch must have been built against this relation's *current*
    /// schema ([`DataError::StaleDelta`] otherwise) — dictionary codes are
    /// extend-only, so a batch snapshotted against an older or newer base
    /// could alias codes. Validation runs before any mutation: on error the
    /// relation (rows and schema both) is unchanged.
    pub fn apply_delta(&mut self, batch: &crate::delta::DeltaBatch) -> Result<(), DataError> {
        let base = batch.base_cardinalities();
        let current = self.schema.cardinalities();
        if base.len() != current.len() {
            return Err(DataError::ArityMismatch {
                expected: current.len(),
                got: base.len(),
            });
        }
        for (dim, (&have, &snap)) in current.iter().zip(base.iter()).enumerate() {
            if have != snap {
                return Err(DataError::StaleDelta {
                    dim,
                    relation: have,
                    batch: snap,
                });
            }
        }
        Self::check_row_budget(self.len(), batch.len())?;
        let widened = self.schema.widen_to(batch.cardinalities())?;
        self.check_values(batch.dim_values(), batch.cardinalities())?;
        self.schema = widened;
        self.dims.extend_from_slice(batch.dim_values());
        self.measures.extend_from_slice(batch.measure_values());
        Ok(())
    }

    /// Number of distinct values actually present in dimension `dim`.
    pub fn distinct_count(&self, dim: usize) -> usize {
        let card = self.schema.cardinality(dim) as usize;
        let mut seen = vec![false; card];
        let mut count = 0usize;
        for i in 0..self.len() {
            let v = self.value(i, dim) as usize;
            if !seen[v] {
                seen[v] = true;
                count += 1;
            }
        }
        count
    }

    /// Sum of the measure over all rows (the "all" cell of the cube).
    pub fn total_measure(&self) -> i64 {
        self.measures.iter().sum()
    }
}

/// Iterator over `(dims, measure)` pairs of a [`Relation`].
pub struct RowsIter<'a> {
    rel: &'a Relation,
    next: usize,
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = (&'a [u32], i64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.rel.len() {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some((self.rel.row(i), self.rel.measure(i)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.rel.len() - self.next;
        (rem, Some(rem))
    }
}

impl<'a> ExactSizeIterator for RowsIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rel3() -> Relation {
        let schema = Schema::from_cardinalities(&[4, 3, 2]).unwrap();
        let mut r = Relation::new(schema);
        r.push_row(&[3, 0, 1], 10).unwrap();
        r.push_row(&[1, 2, 0], 20).unwrap();
        r.push_row(&[1, 1, 1], 30).unwrap();
        r.push_row(&[0, 2, 0], 40).unwrap();
        r
    }

    #[test]
    fn push_validates() {
        let schema = Schema::from_cardinalities(&[2, 2]).unwrap();
        let mut r = Relation::new(schema);
        assert!(matches!(
            r.push_row(&[0], 1),
            Err(DataError::ArityMismatch { .. })
        ));
        assert!(matches!(
            r.push_row(&[0, 5], 1),
            Err(DataError::ValueOutOfRange {
                dim: 1,
                value: 5,
                ..
            })
        ));
        r.push_row(&[1, 1], 1).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn sort_by_dims_is_lexicographic_on_selected_dims() {
        let mut r = rel3();
        r.sort_by_dims(&[0, 1]);
        let keys: Vec<(u32, u32)> = (0..r.len())
            .map(|i| (r.value(i, 0), r.value(i, 1)))
            .collect();
        assert_eq!(keys, vec![(0, 2), (1, 1), (1, 2), (3, 0)]);
        // Measures travel with their rows.
        assert_eq!(r.measure(0), 40);
        assert_eq!(r.measure(3), 10);
    }

    #[test]
    fn sort_by_single_dim_ignores_others() {
        let mut r = rel3();
        r.sort_by_dims(&[2]);
        let vals: Vec<u32> = (0..r.len()).map(|i| r.value(i, 2)).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn range_partition_covers_all_rows_disjointly() {
        let r = rel3();
        let parts = r.range_partition(0, 2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), r.len());
        // Domain [0,4) split at 2: first chunk gets values 0..2.
        for (row, _) in parts[0].rows() {
            assert!(row[0] < 2);
        }
        for (row, _) in parts[1].rows() {
            assert!(row[0] >= 2);
        }
    }

    #[test]
    fn range_partition_more_parts_than_values() {
        let schema = Schema::from_cardinalities(&[2, 2]).unwrap();
        let mut r = Relation::new(schema);
        r.push_row(&[0, 0], 1).unwrap();
        r.push_row(&[1, 1], 2).unwrap();
        let parts = r.range_partition(0, 4);
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), 2);
        // Only two of the four chunks can be non-empty.
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
    }

    #[test]
    fn split_even_balances_counts() {
        let r = rel3();
        let parts = r.split_even(3);
        let sizes: Vec<usize> = parts.iter().map(Relation::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        assert!(sizes.iter().all(|&s| s == 1 || s == 2));
    }

    #[test]
    fn slice_bounds_are_clamped() {
        let r = rel3();
        assert_eq!(r.slice(2, 100).len(), 2);
        assert_eq!(r.slice(10, 20).len(), 0);
        assert_eq!(r.slice(1, 1).len(), 0);
    }

    #[test]
    fn sample_is_without_replacement() {
        let r = rel3();
        let mut rng = SmallRng::seed_from_u64(7);
        let s = r.sample(3, &mut rng);
        assert_eq!(s.len(), 3);
        let s = r.sample(100, &mut rng);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn project_reorders_columns() {
        let r = rel3();
        let p = r.project(&[2, 0]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.row(0), &[1, 3]);
        assert_eq!(p.measure(0), 10);
    }

    #[test]
    fn distinct_and_total() {
        let r = rel3();
        assert_eq!(r.distinct_count(0), 3);
        assert_eq!(r.distinct_count(2), 2);
        assert_eq!(r.total_measure(), 100);
    }

    #[test]
    fn byte_size_accounting() {
        let r = rel3();
        assert_eq!(r.row_bytes(), 3 * 4 + 8);
        assert_eq!(r.byte_size(), 4 * (3 * 4 + 8));
    }

    #[test]
    fn rows_iter_is_exact_size() {
        let r = rel3();
        let it = r.rows();
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn row_budget_is_enforced() {
        // The guard itself, at the boundary (a 4-billion-row relation is
        // not constructible in a test, so exercise the shared check).
        assert!(Relation::check_row_budget(Relation::MAX_ROWS - 1, 1).is_ok());
        assert!(matches!(
            Relation::check_row_budget(Relation::MAX_ROWS, 1),
            Err(DataError::TooManyRows { max, .. }) if max == Relation::MAX_ROWS
        ));
        // Overflow of the addition itself must also be caught.
        assert!(matches!(
            Relation::check_row_budget(usize::MAX, 2),
            Err(DataError::TooManyRows { .. })
        ));
    }

    #[test]
    fn generator_rejects_oversized_specs_before_allocating() {
        let spec = crate::SyntheticSpec::uniform(Relation::MAX_ROWS + 1, vec![2, 2], 0);
        assert!(matches!(
            spec.generate(),
            Err(DataError::TooManyRows { max, .. }) if max == Relation::MAX_ROWS
        ));
    }

    #[test]
    fn extend_from_checks_arity() {
        let mut r = rel3();
        let other = rel3();
        r.extend_from(&other).unwrap();
        assert_eq!(r.len(), 8);
        let bad = Relation::new(Schema::from_cardinalities(&[2]).unwrap());
        assert!(r.extend_from(&bad).is_err());
    }

    #[test]
    fn extend_from_enforces_post_append_row_budget() {
        // Regression (ISSUE 9): the budget must bind on the *post-append*
        // total, not the incoming batch size alone. A MAX_ROWS-sized
        // relation is not constructible in a test, so pin the shared guard
        // at the exact boundary extend_from feeds it: existing + incoming.
        assert!(Relation::check_row_budget(Relation::MAX_ROWS - 4, 4).is_ok());
        assert!(matches!(
            Relation::check_row_budget(Relation::MAX_ROWS - 3, 4),
            Err(DataError::TooManyRows { rows, max })
                if rows == Relation::MAX_ROWS + 1 && max == Relation::MAX_ROWS
        ));
        // And the reachable end-to-end path still threads through it: an
        // empty-into-empty append of zero rows is fine at the boundary.
        let mut r = rel3();
        let empty = Relation::new(r.schema().clone());
        r.extend_from(&empty).unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn extend_from_rejects_reserved_sentinel_codes() {
        // Regression (ISSUE 9): `u32::MAX` is the kernels' in-band NIL
        // (skiplist links, pipesort fill). A hostile batch can only carry
        // it via the unchecked path; extend_from must refuse it with a
        // typed error and leave the target untouched.
        let mut r = rel3();
        let before = r.clone();
        let mut evil = Relation::new(r.schema().clone());
        evil.push_row_unchecked(&[0, 0, 0], 1);
        evil.push_row_unchecked(&[1, Relation::RESERVED_CODE, 1], 2);
        assert!(matches!(
            r.extend_from(&evil),
            Err(DataError::ReservedCode { dim: 1 })
        ));
        assert_eq!(r, before, "failed extend must not mutate the relation");
    }

    #[test]
    fn extend_from_validates_values_against_target_schema() {
        let mut r = rel3();
        let before = r.clone();
        // Same arity, wider declared cardinality: values beyond the
        // target's schema must be rejected, atomically.
        let mut wide = Relation::new(Schema::from_cardinalities(&[9, 9, 9]).unwrap());
        wide.push_row(&[8, 0, 1], 5).unwrap();
        assert!(matches!(
            r.extend_from(&wide),
            Err(DataError::ValueOutOfRange {
                dim: 0,
                value: 8,
                cardinality: 4,
            })
        ));
        assert_eq!(r, before);
        // Wider schema but in-range values is fine.
        let mut ok = Relation::new(Schema::from_cardinalities(&[9, 9, 9]).unwrap());
        ok.push_row(&[3, 2, 1], 5).unwrap();
        r.extend_from(&ok).unwrap();
        assert_eq!(r.len(), 5);
    }
}
