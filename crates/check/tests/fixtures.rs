//! Golden-file tests for the lint pass, plus end-to-end runs of the
//! `icecube-check` binary against a synthetic workspace.

use icecube_check::lints::lint_file;
use icecube_check::policy::CratePolicy;
use std::process::Command;

const STRICT: CratePolicy = CratePolicy {
    name: "fixture",
    no_panic: true,
    deterministic: true,
    may_spawn: false,
};

/// Parses `//~ <lint>` markers into the expected `(line, lint)` set.
fn expected_findings(src: &str) -> Vec<(u32, String)> {
    let mut out: Vec<(u32, String)> = src
        .lines()
        .enumerate()
        .flat_map(|(i, l)| {
            l.split("//~")
                .skip(1)
                .map(move |m| (i as u32 + 1, m.trim().to_string()))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn violations_fixture_matches_golden_file_lines() {
    let src = include_str!("fixtures/violations.rs");
    let findings = lint_file("fixtures/violations.rs", src, &STRICT);
    let mut got: Vec<(u32, String)> = findings
        .iter()
        .map(|f| (f.line, f.lint.to_string()))
        .collect();
    got.sort();
    assert_eq!(got, expected_findings(src), "full findings: {findings:#?}");
    for f in &findings {
        assert_eq!(f.file, "fixtures/violations.rs");
        assert!(
            f.to_string()
                .starts_with(&format!("fixtures/violations.rs:{}:", f.line)),
            "rendering must lead with file:line, got {f}"
        );
    }
}

#[test]
fn suppressed_fixture_is_clean() {
    let src = include_str!("fixtures/suppressed.rs");
    let findings = lint_file("fixtures/suppressed.rs", src, &STRICT);
    assert!(findings.is_empty(), "{findings:#?}");
}

/// Builds a throwaway workspace with one violating crate and runs the
/// real binary against it.
fn run_on_synthetic_tree(tag: &str, args: &[&str]) -> (std::process::Output, std::path::PathBuf) {
    // Tag keeps concurrently-running tests in separate trees.
    let root = std::env::temp_dir().join(format!("icecube-check-e2e-{}-{tag}", std::process::id()));
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("temp tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        "//! Broken on purpose.\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("fixture write");
    let out = Command::new(env!("CARGO_BIN_EXE_icecube-check"))
        .arg("lint")
        .args(args)
        .arg("--root")
        .arg(&root)
        .output()
        .expect("binary runs");
    (out, root)
}

#[test]
fn binary_exits_nonzero_with_file_line_findings() {
    let (out, root) = run_on_synthetic_tree("text", &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(
        stdout.contains("crates/core/src/lib.rs:3: [panic-in-lib]"),
        "stdout: {stdout}"
    );
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn binary_emits_json_when_asked() {
    let (out, root) = run_on_synthetic_tree("json", &["--json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(
        stdout.contains("\"schema\":\"icecube-check-report/v2\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"lint\":\"panic-in-lib\""), "{stdout}");
    assert!(stdout.contains("\"line\":3"), "{stdout}");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn bare_suppressions_report_the_lint_they_target() {
    let root = std::env::temp_dir().join(format!("icecube-check-e2e-bare-{}", std::process::id()));
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("temp tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        "//! Bare allow on purpose.\n// check:allow(panic-in-lib)\npub fn f() {}\n",
    )
    .expect("fixture write");
    let out = Command::new(env!("CARGO_BIN_EXE_icecube-check"))
        .args(["lint", "--json", "--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    // The audit names the lint the bare allow targets, both in the
    // message and as a structured `target` field.
    assert!(stdout.contains("targeting lint `panic-in-lib`"), "{stdout}");
    assert!(stdout.contains("\"target\":\"panic-in-lib\""), "{stdout}");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn binary_is_clean_on_this_repository() {
    // The tree this binary was built from must lint clean — the same
    // gate CI runs.
    let out = Command::new(env!("CARGO_BIN_EXE_icecube-check"))
        .arg("lint")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
}
