//! Golden-file tests for the interprocedural `analyze` engine — one
//! fixture per pass asserting exact `file:line` findings — plus
//! end-to-end runs of `icecube-check analyze` against a synthetic
//! workspace and against this repository itself.

use icecube_check::analyze::{analyze_sources, analyze_workspace, to_json, AnalyzeConfig};
use icecube_check::callgraph::SourceFile;
use std::process::Command;

/// Parses `//~ <lint>` markers into the expected `(line, lint)` set.
fn expected_findings(src: &str) -> Vec<(u32, String)> {
    let mut out: Vec<(u32, String)> = src
        .lines()
        .enumerate()
        .flat_map(|(i, l)| {
            l.split("//~")
                .skip(1)
                .map(move |m| (i as u32 + 1, m.trim().to_string()))
        })
        .collect();
    out.sort();
    out
}

fn source(path: &str, crate_name: &str, src: &str) -> SourceFile {
    SourceFile {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        src: src.to_string(),
    }
}

fn empty_config() -> AnalyzeConfig {
    AnalyzeConfig {
        alloc_roots: Vec::new(),
        lock_scope: Vec::new(),
        spawn_allowed_files: Vec::new(),
        spawn_allowed_crates: Vec::new(),
    }
}

/// Runs one fixture and asserts the findings match its `//~` markers
/// exactly, line by line.
fn assert_golden(path: &str, crate_name: &str, src: &str, config: &AnalyzeConfig) {
    let report = analyze_sources(&[source(path, crate_name, src)], config);
    let mut got: Vec<(u32, String)> = report
        .findings
        .iter()
        .map(|f| (f.line, f.lint.to_string()))
        .collect();
    got.sort();
    assert_eq!(
        got,
        expected_findings(src),
        "full findings: {:#?}",
        report.findings
    );
    for f in &report.findings {
        assert_eq!(f.file, path, "findings must anchor in the fixture file");
    }
}

#[test]
fn panic_fixture_matches_golden_file_lines() {
    // `core` is a `no_panic` policy crate, so both sinks reachable from
    // pub fns report; the dead private panic does not.
    assert_golden(
        "crates/core/src/analyze_panic.rs",
        "core",
        include_str!("fixtures/analyze_panic.rs"),
        &empty_config(),
    );
}

#[test]
fn panic_fixture_names_the_call_path() {
    let report = analyze_sources(
        &[source(
            "crates/core/src/analyze_panic.rs",
            "core",
            include_str!("fixtures/analyze_panic.rs"),
        )],
        &empty_config(),
    );
    let through_helper = report
        .findings
        .iter()
        .find(|f| f.message.contains("`core::entry`"))
        .expect("the helper's unwrap reports against pub fn `entry`");
    assert!(
        through_helper.message.contains("via")
            && through_helper
                .message
                .contains("crates/core/src/analyze_panic.rs:"),
        "path must be spelled file:line-by-file:line: {}",
        through_helper.message
    );
}

#[test]
fn alloc_fixture_matches_golden_file_lines() {
    let mut config = empty_config();
    config.alloc_roots = vec![("core/src/analyze_alloc.rs", None, "recurse")];
    // Only the allocation reachable *from* the root reports; the arena
    // prologue in the root's caller stays legal.
    assert_golden(
        "crates/core/src/analyze_alloc.rs",
        "core",
        include_str!("fixtures/analyze_alloc.rs"),
        &config,
    );
}

#[test]
fn lock_spawn_fixture_matches_golden_file_lines() {
    let mut config = empty_config();
    config.lock_scope = vec!["crates/serve/src/"];
    // `serve` is a `no_panic` crate with no panic sinks here, so the
    // only findings are the inversion pair and the rogue spawn.
    assert_golden(
        "crates/serve/src/analyze_lock_spawn.rs",
        "serve",
        include_str!("fixtures/analyze_lock_spawn.rs"),
        &config,
    );
}

#[test]
fn allow_silences_exactly_one_finding() {
    // Two identical sinks; the justified allow covers its own line and
    // nothing else.
    assert_golden(
        "crates/core/src/analyze_allowed.rs",
        "core",
        include_str!("fixtures/analyze_allowed.rs"),
        &empty_config(),
    );
}

/// Builds a throwaway workspace with one panic-reaching crate and runs
/// the real binary's `analyze` mode against it.
fn run_analyze_on_synthetic_tree(
    tag: &str,
    args: &[&str],
) -> (std::process::Output, std::path::PathBuf) {
    let root =
        std::env::temp_dir().join(format!("icecube-analyze-e2e-{}-{tag}", std::process::id()));
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("temp tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        "//! Broken on purpose.\npub fn f(x: Option<u32>) -> u32 {\n    g(x)\n}\nfn g(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("fixture write");
    let out = Command::new(env!("CARGO_BIN_EXE_icecube-check"))
        .arg("analyze")
        .args(args)
        .arg("--root")
        .arg(&root)
        .output()
        .expect("binary runs");
    (out, root)
}

#[test]
fn analyze_binary_exits_nonzero_with_file_line_findings() {
    let (out, root) = run_analyze_on_synthetic_tree("text", &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(
        stdout.contains("crates/core/src/lib.rs:6: [panic-path]"),
        "finding must anchor at the sink: {stdout}"
    );
    assert!(
        stdout.contains("`core::f`"),
        "finding must name the pub entry point: {stdout}"
    );
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn analyze_binary_emits_schema_v2_json() {
    let (out, root) = run_analyze_on_synthetic_tree("json", &["--json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(
        stdout.contains("\"schema\":\"icecube-check-report/v2\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"mode\":\"analyze\""), "{stdout}");
    assert!(stdout.contains("\"lint\":\"panic-path\""), "{stdout}");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn analyze_binary_is_clean_on_this_repository() {
    // The tree this binary was built from must analyze clean — the same
    // gate CI runs.
    let out = Command::new(env!("CARGO_BIN_EXE_icecube-check"))
        .arg("analyze")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
}

#[test]
fn analyze_json_is_byte_deterministic() {
    // CI diffs two runs; the report must be byte-identical, not merely
    // semantically equal.
    let run = || {
        Command::new(env!("CARGO_BIN_EXE_icecube-check"))
            .args(["analyze", "--json"])
            .output()
            .expect("binary runs")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.status.code(), b.status.code());
    assert_eq!(a.stdout, b.stdout, "analyze --json must be deterministic");
}

#[test]
fn kernel_hot_paths_reach_zero_allocations_without_suppressions() {
    // The arena rewrite's regression gate: nothing reachable from the
    // ASL/AHT/BUC/PT recursion roots allocates, and the kernel files get
    // there by actually not allocating — not by carrying
    // `check:allow(alloc-hot-path)` suppressions. The golden count is
    // zero; any new finding or any new allow in these files is a
    // regression, not a number to rebalance.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let report = analyze_workspace(&root).expect("workspace parses");
    let alloc: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "alloc-hot-path")
        .collect();
    assert_eq!(
        alloc.len(),
        0,
        "unsuppressed alloc-hot-path findings: {alloc:#?}"
    );
    for file in [
        "crates/core/src/asl.rs",
        "crates/core/src/aht.rs",
        "crates/skiplist/src/lib.rs",
    ] {
        let src = std::fs::read_to_string(root.join(file)).expect("kernel source");
        assert!(
            !src.contains("check:allow(alloc-hot-path)"),
            "{file} reintroduced an alloc-hot-path suppression"
        );
    }
}

#[test]
fn json_report_roundtrips_through_to_json() {
    let report = analyze_sources(
        &[source(
            "crates/core/src/analyze_panic.rs",
            "core",
            include_str!("fixtures/analyze_panic.rs"),
        )],
        &empty_config(),
    );
    let json = to_json(&report);
    assert!(json.starts_with("{\"schema\":\"icecube-check-report/v2\""));
    assert!(json.contains("\"mode\":\"analyze\""));
    assert!(json.ends_with("}"));
}
