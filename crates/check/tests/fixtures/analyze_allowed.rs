//! Suppression fixture: two identical panic sinks, one carrying a
//! justified allow. The allow must silence exactly its own line — the
//! unsuppressed twin still reports.

pub fn first(x: Option<u32>) -> u32 {
    // check:allow(panic-path): fixture — this sink is the justified one.
    x.unwrap()
}

pub fn second(x: Option<u32>) -> u32 {
    x.unwrap() //~ panic-path
}
