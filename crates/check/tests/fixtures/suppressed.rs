//! The same violations as `violations.rs`, each carrying a justified
//! suppression (or the dedicated `// relaxed:` justification): the lint
//! pass must report nothing. This file is never compiled.

// check:allow-file(unordered-collections): exercises the file-scoped
// form; order never escapes this fixture.

use std::collections::HashMap;

/// Unwraps behind a documented invariant.
pub fn fine(x: Option<u32>) -> u32 {
    // check:allow(panic-in-lib): fixture — the invariant is documented
    // right here.
    x.unwrap()
}

/// Same-line suppression form.
pub fn also_fine(x: Option<u32>) -> u32 {
    x.unwrap() // check:allow(panic-in-lib): fixture — same-line form.
}

/// Relaxed with the dedicated justification comment.
pub fn counted(c: &AtomicU64) {
    // relaxed: independent tally; no ordering required.
    c.fetch_add(1, Ordering::Relaxed);
}

/// Covered by the file-scoped allow at the top.
pub fn table() -> HashMap<u32, u32> {
    HashMap::new()
}
