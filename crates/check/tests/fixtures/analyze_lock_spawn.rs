//! Lock-order and spawn-discipline fixture. `forward` and `backward`
//! acquire the same two locks in opposite orders; inversion findings
//! anchor at each function's definition line. `rogue` spawns outside
//! every allowed site.

struct Pool;

impl Pool {
    fn forward(&self) { //~ lock-order
        self.jobs.lock();
        self.done.lock();
    }

    fn backward(&self) { //~ lock-order
        self.done.lock();
        self.jobs.lock();
    }

    fn single(&self) {
        self.done.lock();
    }
}

fn rogue() {
    std::thread::spawn(|| {}); //~ spawn-site
}
