//! A deliberately broken module. Every marker comment (slash-slash
//! tilde) names the finding the lint pass must report at exactly that
//! line under the
//! strictest policy (no-panic + deterministic + no spawning). The
//! golden-file test in `tests/fixtures.rs` parses these markers; this
//! file is never compiled.

use std::collections::HashMap; //~ unordered-collections

pub fn undocumented() {} //~ missing-docs

/// Documented, but panics.
pub fn panicky(x: Option<u32>) -> u32 {
    x.unwrap() //~ panic-in-lib
}

/// Asserts in library code.
pub fn checked(v: &[u32]) {
    assert!(!v.is_empty()); //~ panic-in-lib
}

/// Reads the wall clock.
pub fn timing() -> u128 {
    Instant::now().elapsed().as_nanos() //~ wall-clock
}

/// Uses an unordered set.
pub fn dedup(v: Vec<u32>) -> HashSet<u32> { //~ unordered-collections
    v.into_iter().collect()
}

/// Spawns a thread in a crate that may not.
pub fn spawner() {
    std::thread::spawn(|| {}); //~ thread-spawn
}

/// Relaxed ordering without the justification comment.
pub fn tally(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); //~ relaxed-ordering
}

// check:allow(panic-in-lib) //~ suppression
fn bare_suppression_above() {}

// check:allow(made-up-lint): justified but unknown. //~ suppression
fn unknown_lint_above() {}

/// Inside `#[cfg(test)]`, everything below is exempt.
#[cfg(test)]
mod tests {
    #[test]
    fn anything_goes() {
        Some(1).unwrap();
        let _ = std::collections::HashMap::<u32, u32>::new();
        std::thread::spawn(|| {});
    }
}
