//! Allocation-dataflow fixture: `recurse` is the configured hot root;
//! anything it transitively reaches must not allocate. `prologue` is a
//! caller of the root, not a callee, so its allocation is exempt — that
//! is how the scratch-arena prologue pattern stays legal.

pub fn recurse(depth: u32) {
    if depth == 0 {
        return;
    }
    scratch();
    recurse(depth - 1);
}

fn scratch() {
    let v: Vec<u32> = Vec::new(); //~ alloc-hot-path
    drop(v);
}

pub fn prologue(depth: u32) {
    let arena: Vec<u32> = Vec::with_capacity(64);
    drop(arena);
    recurse(depth);
}
