//! Panic-reachability fixture: pub fns of a `no_panic` crate reaching
//! panic sinks through private helpers. Tilde markers flag the expected
//! finding lines — findings anchor at the sink, not the pub entry.

pub fn entry(x: Option<u32>) -> u32 {
    helper(x)
}

fn helper(x: Option<u32>) -> u32 {
    x.unwrap() //~ panic-path
}

pub fn index(xs: &[u32]) -> u32 {
    xs[0] //~ panic-path
}

pub fn safe(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

fn dead_code_panics() {
    panic!("unreachable from any pub fn, so not a finding");
}
