//! The workspace-wide call graph the analysis passes run over.
//!
//! Nodes are every non-test function [`crate::parser`] finds. Edges are
//! resolved from body events by name, scoped per crate, with receiver
//! types recovered from `self`, typed parameters and `let x = Type::…`
//! bindings. Resolution is deliberately conservative (DESIGN §12): a
//! call we cannot place either stays *external* (no edge — the common
//! case for std methods) or, when several workspace functions share the
//! name and nothing disambiguates, lands in the [`Unresolved`] bucket
//! that `--json` reports verbatim. A wrong edge would fabricate
//! findings; a missing edge is visible in the bucket.
//!
//! Terminal *sinks* (panic sources, allocating constructors, lock
//! acquisitions, thread spawns) are recorded per node instead of being
//! edges, so every pass is a reachability question plus a sink filter.

use crate::parser::{parse_file, EventKind, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Method names that are panic sources when called on anything.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Macros that panic in release builds (`debug_assert*` compiles out and
/// is deliberately absent).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];
/// Method names that allocate.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "collect"];
/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];
/// `Type::fn` paths that allocate.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "with_capacity"),
];

/// Method names std's own containers/iterators/sync types define. The
/// *untyped*-receiver fallback never unique-name-resolves these to a
/// workspace method: `chain.insert(..)` on an untyped local is almost
/// certainly `Vec::insert`, and an edge to some workspace `insert`
/// would fabricate call paths. Typed receivers are unaffected.
const STD_METHODS: &[&str] = &[
    "insert",
    "remove",
    "get",
    "get_mut",
    "push",
    "pop",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "entry",
    "extend",
    "extend_from_slice",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "dedup",
    "binary_search",
    "binary_search_by",
    "binary_search_by_key",
    "split_at",
    "split_at_mut",
    "swap",
    "reverse",
    "drain",
    "retain",
    "truncate",
    "resize",
    "reserve",
    "fill",
    "first",
    "last",
    "first_mut",
    "last_mut",
    "join",
    "split",
    "find",
    "position",
    "map",
    "and_then",
    "take",
    "replace",
    "send",
    "recv",
    "try_recv",
    "next",
    "peek",
    "count",
    "sum",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "push_str",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "load",
    "store",
    "fetch_add",
    "to_string",
    "parse",
    "as_str",
    "as_slice",
    "as_ref",
    "as_mut",
    "windows",
    "chunks",
    "flatten",
    "enumerate",
    "zip",
    "rev",
    "skip",
    "chain",
    "filter",
    "fold",
    "all",
    "any",
    "cloned",
    "copied",
    "get_or_insert_with",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "starts_with",
    "ends_with",
];

/// One source file handed to the graph builder.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Crate directory name (`core`, `serve`, …).
    pub crate_name: String,
    /// File contents.
    pub src: String,
}

/// One call-graph node: a non-test function.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Crate directory name.
    pub crate_name: String,
    /// Enclosing impl/trait type, if any.
    pub owner: Option<String>,
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Unrestricted `pub`.
    pub is_pub: bool,
}

impl FnNode {
    /// `crate::Owner::name` — the display name findings use.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{}::{}::{}", self.crate_name, owner, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// What a terminal sink does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// Can panic (`unwrap`, `panic!`, `[]`-indexing, …).
    Panic,
    /// Allocates (`clone`, `Vec::new`, `vec!`, …).
    Alloc,
    /// Acquires a lock; `what` names the lock.
    Lock,
    /// Spawns a thread.
    Spawn,
}

/// One terminal sink inside a function body.
#[derive(Debug, Clone)]
pub struct Sink {
    /// 1-based source line of the sink expression.
    pub line: u32,
    /// Category.
    pub kind: SinkKind,
    /// Human name: `.unwrap()`, `panic!`, `[]-indexing`, `Vec::new`,
    /// or — for locks — the receiver identity (`rx`, `queue`).
    pub what: String,
}

/// A method call the resolver could not place: several workspace
/// functions share the name and no receiver type disambiguates.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Unresolved {
    /// Call-site file.
    pub file: String,
    /// Call-site line.
    pub line: u32,
    /// The method name.
    pub method: String,
    /// Qualified names of the candidate definitions.
    pub candidates: Vec<String>,
}

/// One call edge: callee index plus the 1-based call-site line.
pub type Edge = (usize, u32);

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test functions, sorted by (file, line).
    pub nodes: Vec<FnNode>,
    /// Outgoing edges per node, sorted and deduplicated.
    pub edges: Vec<Vec<Edge>>,
    /// Terminal sinks per node, in source order.
    pub sinks: Vec<Vec<Sink>>,
    /// Method calls resolution gave up on, sorted.
    pub unresolved: Vec<Unresolved>,
    /// Parsed per-file views, kept for suppression matching.
    pub files: BTreeMap<String, ParsedFile>,
}

impl CallGraph {
    /// Builds the graph from parsed sources. Deterministic: nodes,
    /// edges and the unresolved bucket come out sorted.
    pub fn build(sources: &[SourceFile]) -> CallGraph {
        let mut graph = CallGraph::default();
        // Parse every file and collect nodes with back-references to
        // their defining (file, fn index) for the event pass.
        let mut sorted: Vec<&SourceFile> = sources.iter().collect();
        sorted.sort_by(|a, b| a.path.cmp(&b.path));
        let mut fn_refs: Vec<(usize, usize)> = Vec::new(); // (source idx, fn idx)
        for (si, source) in sorted.iter().enumerate() {
            let parsed = parse_file(&source.src);
            for (fi, def) in parsed.fns.iter().enumerate() {
                if def.is_test {
                    continue;
                }
                graph.nodes.push(FnNode {
                    file: source.path.clone(),
                    crate_name: source.crate_name.clone(),
                    owner: def.owner.clone(),
                    name: def.name.clone(),
                    line: def.line,
                    is_pub: def.is_pub,
                });
                fn_refs.push((si, fi));
            }
            graph.files.insert(source.path.clone(), parsed);
        }

        // Name indexes. Values stay sorted because nodes are.
        let mut by_owner_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, node) in graph.nodes.iter().enumerate() {
            match &node.owner {
                Some(owner) => {
                    by_owner_name
                        .entry((owner.clone(), node.name.clone()))
                        .or_default()
                        .push(i);
                    methods_by_name
                        .entry(node.name.clone())
                        .or_default()
                        .push(i);
                }
                None => {
                    free_by_crate
                        .entry((node.crate_name.clone(), node.name.clone()))
                        .or_default()
                        .push(i);
                }
            }
        }
        // Free functions by bare name, for workspace-unique fallback.
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, node) in graph.nodes.iter().enumerate() {
            if node.owner.is_none() {
                free_by_name.entry(node.name.clone()).or_default().push(i);
            }
        }

        let mut unresolved: BTreeSet<Unresolved> = BTreeSet::new();
        for (ni, &(si, fi)) in fn_refs.iter().enumerate() {
            let source = sorted[si];
            let def = &graph.files[&source.path].fns[fi];
            let node_crate = source.crate_name.clone();
            let owner = graph.nodes[ni].owner.clone();
            let mut edges: BTreeSet<Edge> = BTreeSet::new();
            let mut sinks: Vec<Sink> = Vec::new();
            for event in &def.events {
                match &event.kind {
                    EventKind::Index => sinks.push(Sink {
                        line: event.line,
                        kind: SinkKind::Panic,
                        what: "[]-indexing".to_string(),
                    }),
                    EventKind::MacroUse { name } => {
                        if PANIC_MACROS.contains(&name.as_str()) {
                            sinks.push(Sink {
                                line: event.line,
                                kind: SinkKind::Panic,
                                what: format!("{name}!"),
                            });
                        } else if ALLOC_MACROS.contains(&name.as_str()) {
                            sinks.push(Sink {
                                line: event.line,
                                kind: SinkKind::Alloc,
                                what: format!("{name}!"),
                            });
                        }
                    }
                    EventKind::Method { chain, name } => {
                        if PANIC_METHODS.contains(&name.as_str()) {
                            sinks.push(Sink {
                                line: event.line,
                                kind: SinkKind::Panic,
                                what: format!(".{name}()"),
                            });
                            continue;
                        }
                        if ALLOC_METHODS.contains(&name.as_str()) {
                            sinks.push(Sink {
                                line: event.line,
                                kind: SinkKind::Alloc,
                                what: format!(".{name}()"),
                            });
                            continue;
                        }
                        if name == "lock" {
                            sinks.push(Sink {
                                line: event.line,
                                kind: SinkKind::Lock,
                                what: lock_identity(chain),
                            });
                            continue;
                        }
                        if name == "spawn" {
                            sinks.push(Sink {
                                line: event.line,
                                kind: SinkKind::Spawn,
                                what: ".spawn()".to_string(),
                            });
                            continue;
                        }
                        // Receiver type, when the chain makes it evident.
                        let recv_type = match chain.as_slice() {
                            [one] if one == "self" => owner.clone(),
                            [one] => def.bindings.get(one).cloned(),
                            _ => None,
                        };
                        if let Some(ty) = recv_type {
                            if let Some(cands) = by_owner_name.get(&(ty, name.clone())) {
                                for &c in prefer_crate(cands, &graph.nodes, &node_crate) {
                                    edges.insert((c, event.line));
                                }
                            }
                            // Typed receiver without a workspace method:
                            // a std/trait method — external, no edge.
                            continue;
                        }
                        // Untyped receiver: unique-name heuristic with
                        // the unresolved escape hatch. Std container/
                        // iterator names are excluded outright — they
                        // would resolve to coincidental namesakes.
                        if STD_METHODS.contains(&name.as_str()) {
                            continue;
                        }
                        let cands = methods_by_name
                            .get(name)
                            .map(Vec::as_slice)
                            .unwrap_or_default();
                        let narrowed = prefer_crate(cands, &graph.nodes, &node_crate);
                        match narrowed.len() {
                            0 => {} // external
                            1 => {
                                edges.insert((narrowed[0], event.line));
                            }
                            _ => {
                                unresolved.insert(Unresolved {
                                    file: source.path.clone(),
                                    line: event.line,
                                    method: name.clone(),
                                    candidates: narrowed
                                        .iter()
                                        .map(|&c| graph.nodes[c].qualified())
                                        .collect(),
                                });
                            }
                        }
                    }
                    EventKind::PathCall { segments } => {
                        resolve_path_call(
                            segments,
                            event.line,
                            &owner,
                            &node_crate,
                            &source.path,
                            &graph.nodes,
                            &by_owner_name,
                            &free_by_crate,
                            &free_by_name,
                            &mut edges,
                            &mut sinks,
                        );
                    }
                }
            }
            graph.edges.push(edges.into_iter().collect());
            graph.sinks.push(sinks);
        }
        graph.unresolved = unresolved.into_iter().collect();
        graph
    }

    /// Node index of the function defined at `file`:`line`, if any.
    pub fn node_at(&self, file: &str, line: u32) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.file == file && n.line == line)
    }

    /// Total edge count (for the summary line).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// The lock identity a receiver chain names: the chain without a leading
/// `self`, joined with dots (`self.inner.rx` → `inner.rx`). An empty or
/// opaque chain gets the catch-all name `<expr>`.
fn lock_identity(chain: &[String]) -> String {
    let trimmed: Vec<&str> = chain
        .iter()
        .map(String::as_str)
        .skip_while(|s| *s == "self")
        .collect();
    if trimmed.is_empty() {
        "<expr>".to_string()
    } else {
        trimmed.join(".")
    }
}

/// Narrows candidates to the caller's crate when any live there;
/// same-crate definitions shadow cross-crate namesakes.
fn prefer_crate<'a>(cands: &'a [usize], nodes: &[FnNode], crate_name: &str) -> &'a [usize] {
    let same: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| nodes[c].crate_name == crate_name)
        .collect();
    if same.is_empty() {
        cands
    } else {
        // Candidates are contiguous in the sorted node order only within
        // one crate; find the matching subslice.
        let start = cands
            .iter()
            .position(|&c| nodes[c].crate_name == crate_name)
            .unwrap_or(0);
        &cands[start..start + same.len()]
    }
}

/// Maps a path's first segment to a workspace crate directory name
/// (`icecube_core` → `core`).
fn crate_of_segment(seg: &str) -> Option<String> {
    seg.strip_prefix("icecube_").map(str::to_string)
}

/// Resolves `a::b::c(..)` and bare `f(..)` calls into edges or sinks.
#[allow(clippy::too_many_arguments)]
fn resolve_path_call(
    segments: &[String],
    line: u32,
    owner: &Option<String>,
    node_crate: &str,
    caller_file: &str,
    nodes: &[FnNode],
    by_owner_name: &BTreeMap<(String, String), Vec<usize>>,
    free_by_crate: &BTreeMap<(String, String), Vec<usize>>,
    free_by_name: &BTreeMap<String, Vec<usize>>,
    edges: &mut BTreeSet<Edge>,
    sinks: &mut Vec<Sink>,
) {
    let last = segments.last().expect("paths have segments").clone();
    // `std::thread::spawn` / `thread::spawn`.
    if segments.len() >= 2 && last == "spawn" && segments[segments.len() - 2] == "thread" {
        sinks.push(Sink {
            line,
            kind: SinkKind::Spawn,
            what: "thread::spawn".to_string(),
        });
        return;
    }
    if segments.len() >= 2 {
        let ty = &segments[segments.len() - 2];
        if ALLOC_PATHS
            .iter()
            .any(|(t, f)| *t == ty.as_str() && *f == last)
        {
            sinks.push(Sink {
                line,
                kind: SinkKind::Alloc,
                what: format!("{ty}::{last}"),
            });
            return;
        }
    }
    if segments.len() == 1 {
        // A bare call: a free function in scope, or an imported one that
        // is unique in the workspace. Uppercase names are tuple-struct
        // or variant constructors, never workspace fns. Same-file
        // definitions shadow same-crate namesakes — a private free fn is
        // only callable unqualified from its own module.
        if last.chars().next().is_some_and(char::is_uppercase) {
            return;
        }
        if let Some(cands) = free_by_crate.get(&(node_crate.to_string(), last.clone())) {
            let same_file: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| nodes[c].file == caller_file)
                .collect();
            for &c in if same_file.is_empty() {
                cands
            } else {
                &same_file
            } {
                edges.insert((c, line));
            }
            return;
        }
        if let Some(cands) = free_by_name.get(&last) {
            if cands.len() == 1 {
                edges.insert((cands[0], line));
            }
        }
        return;
    }
    // `Type::method(..)`, with `Self` substituted from the impl owner.
    let mut ty = segments[segments.len() - 2].clone();
    if ty == "Self" {
        if let Some(owner) = owner {
            ty = owner.clone();
        }
    }
    if ty.chars().next().is_some_and(char::is_uppercase) {
        if let Some(cands) = by_owner_name.get(&(ty, last.clone())) {
            for &c in prefer_crate(cands, nodes, node_crate) {
                edges.insert((c, line));
            }
        }
        return;
    }
    // `crate::…::f`, `self::f`, `icecube_x::…::f` — a crate-qualified
    // free function; anything else (e.g. `std::mem::replace`) stays
    // external.
    let target_crate = match segments[0].as_str() {
        "crate" | "self" | "super" => Some(node_crate.to_string()),
        seg => crate_of_segment(seg),
    };
    if let Some(target) = target_crate {
        if let Some(cands) = free_by_crate.get(&(target, last)) {
            for &c in cands {
                edges.insert((c, line));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            src: src.to_string(),
        }
    }

    fn graph(sources: &[SourceFile]) -> CallGraph {
        CallGraph::build(sources)
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no node `{name}` in {:?}", g.nodes))
    }

    fn callees(g: &CallGraph, from: &str) -> Vec<String> {
        g.edges[node(g, from)]
            .iter()
            .map(|&(c, _)| g.nodes[c].qualified())
            .collect()
    }

    #[test]
    fn free_fn_calls_resolve_within_the_crate() {
        let g = graph(&[src(
            "crates/a/src/lib.rs",
            "a",
            "fn top() { helper(); }\nfn helper() {}",
        )]);
        assert_eq!(callees(&g, "top"), vec!["a::helper"]);
        assert!(g.unresolved.is_empty());
    }

    #[test]
    fn self_methods_resolve_via_the_impl_owner() {
        let g = graph(&[src(
            "crates/a/src/lib.rs",
            "a",
            "struct S;\nimpl S {\n    fn a(&self) { self.b(); }\n    fn b(&self) {}\n}",
        )]);
        assert_eq!(callees(&g, "a"), vec!["a::S::b"]);
    }

    #[test]
    fn typed_parameters_resolve_methods_cross_crate() {
        let g = graph(&[
            src(
                "crates/a/src/lib.rs",
                "a",
                "pub struct Store;\nimpl Store {\n    pub fn get(&self) {}\n}",
            ),
            src(
                "crates/b/src/lib.rs",
                "b",
                "fn read(store: &Store) { store.get(); }",
            ),
        ]);
        assert_eq!(callees(&g, "read"), vec!["a::Store::get"]);
    }

    #[test]
    fn typed_receivers_without_workspace_methods_stay_external() {
        let g = graph(&[src(
            "crates/a/src/lib.rs",
            "a",
            "fn f(v: Vec<u32>) { v.push(1); }\nstruct T;\nimpl T { fn push(&self) {} }",
        )]);
        // `v` is typed `Vec`, so `T::push` must NOT be linked.
        assert!(callees(&g, "f").is_empty(), "{:?}", callees(&g, "f"));
        assert!(g.unresolved.is_empty());
    }

    #[test]
    fn ambiguous_untyped_methods_land_in_the_unresolved_bucket() {
        let g = graph(&[src(
            "crates/a/src/lib.rs",
            "a",
            "struct X;\nimpl X { fn go(&self) {} }\nstruct Y;\nimpl Y { fn go(&self) {} }\nfn f(t: bool) {\n    let h = pick(t);\n    h.go();\n}\nfn pick(_: bool) -> X { X }",
        )]);
        assert_eq!(g.unresolved.len(), 1, "{:?}", g.unresolved);
        assert_eq!(g.unresolved[0].method, "go");
        assert_eq!(g.unresolved[0].candidates, vec!["a::X::go", "a::Y::go"]);
    }

    #[test]
    fn type_qualified_calls_and_self_resolve() {
        let g = graph(&[src(
            "crates/a/src/lib.rs",
            "a",
            "struct S;\nimpl S {\n    fn mk() -> S { Self::blank() }\n    fn blank() -> S { S }\n    fn via() { S::blank(); }\n}",
        )]);
        assert_eq!(callees(&g, "mk"), vec!["a::S::blank"]);
        assert_eq!(callees(&g, "via"), vec!["a::S::blank"]);
    }

    #[test]
    fn sinks_classify_panics_allocs_locks_and_spawns() {
        let g = graph(&[src(
            "crates/a/src/lib.rs",
            "a",
            "fn f(x: Option<u32>, v: &[u32], q: &Mutex<u32>) {\n    x.unwrap();\n    panic!(\"boom\");\n    let _ = v[0];\n    let _c = v.to_vec();\n    let _b = Vec::with_capacity(4);\n    let _s = vec![1];\n    let _g = q.lock();\n    std::thread::spawn(|| {});\n}",
        )]);
        let sinks = &g.sinks[node(&g, "f")];
        let whats: Vec<(&SinkKind, &str)> =
            sinks.iter().map(|s| (&s.kind, s.what.as_str())).collect();
        assert!(whats.contains(&(&SinkKind::Panic, ".unwrap()")));
        assert!(whats.contains(&(&SinkKind::Panic, "panic!")));
        assert!(whats.contains(&(&SinkKind::Panic, "[]-indexing")));
        assert!(whats.contains(&(&SinkKind::Alloc, ".to_vec()")));
        assert!(whats.contains(&(&SinkKind::Alloc, "Vec::with_capacity")));
        assert!(whats.contains(&(&SinkKind::Alloc, "vec!")));
        assert!(whats.contains(&(&SinkKind::Lock, "q")));
        assert!(whats.contains(&(&SinkKind::Spawn, "thread::spawn")));
    }

    #[test]
    fn debug_assert_is_not_a_panic_sink() {
        let g = graph(&[src(
            "crates/a/src/lib.rs",
            "a",
            "fn f(a: u32) { debug_assert!(a > 0); }",
        )]);
        assert!(g.sinks[node(&g, "f")].is_empty());
    }

    #[test]
    fn test_functions_are_not_nodes() {
        let g = graph(&[src(
            "crates/a/src/lib.rs",
            "a",
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].name, "lib");
    }

    #[test]
    fn same_crate_definitions_shadow_cross_crate_namesakes() {
        let g = graph(&[
            src("crates/a/src/lib.rs", "a", "struct P;\nimpl P { fn run(&self) {} }"),
            src(
                "crates/b/src/lib.rs",
                "b",
                "struct Q;\nimpl Q { fn run(&self) {} }\nfn f() {\n    let x = make();\n    x.run();\n}\nfn make() -> Q { Q }",
            ),
        ]);
        // Untyped receiver, two workspace `run`s — but only one in the
        // caller's crate, so it resolves there instead of going
        // unresolved. (`make` is the ordinary free-fn edge.)
        let c = callees(&g, "f");
        assert!(c.contains(&"b::Q::run".to_string()), "{c:?}");
        assert!(!c.contains(&"a::P::run".to_string()), "{c:?}");
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
    }

    #[test]
    fn lock_identities_come_from_the_receiver_chain() {
        let g = graph(&[src(
            "crates/a/src/lib.rs",
            "a",
            "struct S;\nimpl S {\n    fn f(&self) {\n        self.inner.rx.lock();\n    }\n}",
        )]);
        let sinks = &g.sinks[node(&g, "f")];
        assert_eq!(sinks[0].what, "inner.rx");
    }
}
