//! The lint pass: token-sequence rules over one file, driven by the
//! crate's [`CratePolicy`].
//!
//! Rules match *token sequences* from [`crate::lexer`], so strings,
//! comments and doc-tests can never produce false positives. Code under
//! `#[cfg(test)]` is exempt from every rule except the suppression
//! hygiene check. Any finding can be suppressed with an adjacent
//! `// check:allow(<lint>): <why>` comment — the justification is
//! mandatory; a bare suppression is itself a finding.

use crate::lexer::{lex, Tok, Token};
use crate::policy::CratePolicy;
use crate::report::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Every lint the checker knows, with a one-line description.
pub const LINTS: &[(&str, &str)] = &[
    (
        "panic-in-lib",
        "no unwrap/expect/panic!/assert! in non-test library code of no-panic crates",
    ),
    (
        "wall-clock",
        "no Instant::now/SystemTime in deterministic simulation crates",
    ),
    (
        "unordered-collections",
        "no HashMap/HashSet in deterministic simulation crates (iteration order leaks)",
    ),
    (
        "thread-spawn",
        "no direct thread spawning outside the crates allowed to own threads",
    ),
    (
        "relaxed-ordering",
        "every Ordering::Relaxed needs an adjacent `// relaxed:` justification",
    ),
    ("missing-docs", "every pub item needs a doc comment"),
    (
        "no-clone-hot-path",
        "no .clone()/.to_vec()/.to_owned()/.collect::<>/format!/vec! in the kernel hot-path files",
    ),
    (
        "suppression",
        "check:allow comments must name a known lint and give a justification",
    ),
    (
        "policy",
        "every crate under crates/ must appear in the policy table",
    ),
    (
        "panic-path",
        "no pub fn of a no-panic crate may transitively reach a panic source (call-graph pass)",
    ),
    (
        "alloc-hot-path",
        "no fn reachable from a kernel recursion root may reach an allocating constructor",
    ),
    (
        "lock-order",
        "no two functions may acquire the same two locks in opposite order",
    ),
    (
        "spawn-site",
        "thread spawns must stay confined to the allowed files (call-graph pass)",
    ),
];

/// Files held to the zero-clone discipline of DESIGN.md §10: the arena
/// kernel's whole point is that recursion never copies an index set, so a
/// new `.clone()` here is a performance regression until proven otherwise
/// (suppress with `// check:allow(no-clone-hot-path): <why>` if one is
/// genuinely warranted).
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/buc.rs",
    "crates/core/src/partition.rs",
    "crates/core/src/asl.rs",
    "crates/core/src/aht.rs",
    "crates/skiplist/src/lib.rs",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

// `mod` is deliberately absent: `pub mod x;` declarations are documented
// by the module file's own `//!` inner docs, which this pass cannot see
// from the declaration site (rustc's `missing_docs` accepts them too).
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "const", "static", "type", "union",
];
const ITEM_PREFIXES: &[&str] = &["unsafe", "async", "extern"];

/// Lints one file's source under `policy`, reporting `file` (typically a
/// repo-relative path) in findings. Suppressions are already applied;
/// what comes back is what the user should see.
pub fn lint_file(file: &str, src: &str, policy: &CratePolicy) -> Vec<Finding> {
    let tokens = lex(src);
    let masked = test_mask(&tokens);

    // Line-indexed views for justification and suppression matching.
    let mut comment_lines: BTreeMap<u32, String> = BTreeMap::new();
    let mut code_lines: BTreeSet<u32> = BTreeSet::new();
    for t in &tokens {
        match &t.tok {
            Tok::LineComment(text) => {
                let entry = comment_lines.entry(t.line).or_default();
                entry.push(' ');
                entry.push_str(text);
            }
            Tok::DocComment => {}
            _ => {
                code_lines.insert(t.line);
            }
        }
    }

    let mut findings = Vec::new();
    // Suppression hygiene runs even in test code: a malformed allow
    // comment is a lie wherever it sits.
    let suppressions = collect_suppressions(&comment_lines, &mut findings, file);

    // The code stream the sequence rules run over: no comments, no docs,
    // no `#[cfg(test)]` regions.
    let code: Vec<&Token> = tokens
        .iter()
        .zip(&masked)
        .filter(|(t, &m)| !m && !matches!(t.tok, Tok::LineComment(_) | Tok::DocComment))
        .map(|(t, _)| t)
        .collect();

    let ident = |i: usize| match code.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct =
        |i: usize, c: char| matches!(code.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);
    let path_sep = |i: usize| punct(i, ':') && punct(i + 1, ':');

    let mut raw: Vec<Finding> = Vec::new();
    let mut emit = |line: u32, lint: &'static str, message: String| {
        raw.push(Finding::new(file, line, lint, message));
    };

    let hot_path = HOT_PATH_FILES.iter().any(|h| file.ends_with(h));
    for i in 0..code.len() {
        let line = code[i].line;
        if hot_path {
            if punct(i, '.') && punct(i + 2, '(') {
                if let Some(name @ ("clone" | "to_vec" | "to_owned")) = ident(i + 1) {
                    emit(
                        code[i + 1].line,
                        "no-clone-hot-path",
                        format!(
                            "`.{name}()` in a zero-clone kernel file; recurse over arena ranges"
                        ),
                    );
                }
            }
            // `.collect::<…>` — the turbofish form the satellite names;
            // plain `.collect()` is the dataflow pass's job, where the
            // reachability context says whether it is hot.
            if punct(i, '.')
                && ident(i + 1) == Some("collect")
                && punct(i + 2, ':')
                && punct(i + 3, ':')
                && punct(i + 4, '<')
            {
                emit(
                    code[i + 1].line,
                    "no-clone-hot-path",
                    "`.collect::<…>()` in a zero-clone kernel file; fill a scratch buffer instead"
                        .to_string(),
                );
            }
            if let Some(name @ ("format" | "vec")) = ident(i) {
                if punct(i + 1, '!') {
                    emit(
                        line,
                        "no-clone-hot-path",
                        format!(
                            "`{name}!` allocates in a zero-clone kernel file; reuse a scratch \
                             buffer instead"
                        ),
                    );
                }
            }
        }
        if policy.no_panic {
            if punct(i, '.') {
                if let Some(name @ ("unwrap" | "expect")) = ident(i + 1) {
                    if punct(i + 2, '(') {
                        emit(
                            code[i + 1].line,
                            "panic-in-lib",
                            format!("`.{name}()` in library code; return a typed error"),
                        );
                    }
                }
            }
            if let Some(name) = ident(i) {
                if PANIC_MACROS.contains(&name) && punct(i + 1, '!') {
                    emit(
                        line,
                        "panic-in-lib",
                        format!("`{name}!` in library code; return a typed error"),
                    );
                }
            }
        }
        if policy.deterministic {
            if ident(i) == Some("Instant") && path_sep(i + 1) && ident(i + 3) == Some("now") {
                emit(
                    line,
                    "wall-clock",
                    "`Instant::now` in a deterministic simulation crate".to_string(),
                );
            }
            if ident(i) == Some("SystemTime") {
                emit(
                    line,
                    "wall-clock",
                    "`SystemTime` in a deterministic simulation crate".to_string(),
                );
            }
            if let Some(name @ ("HashMap" | "HashSet")) = ident(i) {
                emit(
                    line,
                    "unordered-collections",
                    format!("`{name}` in a deterministic simulation crate; use a BTree collection"),
                );
            }
        }
        if !policy.may_spawn
            && ident(i) == Some("thread")
            && path_sep(i + 1)
            && matches!(ident(i + 3), Some("spawn" | "Builder" | "scope"))
        {
            emit(
                line,
                "thread-spawn",
                "thread spawning outside the crates allowed to own threads".to_string(),
            );
        }
        if ident(i) == Some("Ordering")
            && path_sep(i + 1)
            && ident(i + 3) == Some("Relaxed")
            && !comment_block_contains(&comment_lines, &code_lines, line, "relaxed:")
        {
            emit(
                line,
                "relaxed-ordering",
                "`Ordering::Relaxed` without an adjacent `// relaxed:` justification".to_string(),
            );
        }
    }

    missing_docs(&tokens, &masked, file, &mut raw);

    // Apply suppressions: a finding is dropped when an adjacent
    // `check:allow` names its lint (same line, or the comment block
    // directly above). Meta findings about suppressions themselves are
    // never suppressible.
    findings.extend(raw.into_iter().filter(|f| {
        f.lint == "suppression"
            || !suppression_covers(&suppressions, &comment_lines, &code_lines, f.line, f.lint)
    }));
    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    findings
}

/// Marks every token belonging to a `#[cfg(test)]` item (attribute
/// through the end of the item's brace block or terminating semicolon).
pub(crate) fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let is = |i: usize, want: &Tok| tokens.get(i).map(|t| &t.tok) == Some(want);
    let id = |s: &str| Tok::Ident(s.to_string());
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        let cfg_test = is(i, &Tok::Punct('#'))
            && is(i + 1, &Tok::Punct('['))
            && is(i + 2, &id("cfg"))
            && is(i + 3, &Tok::Punct('('))
            && is(i + 4, &id("test"))
            && is(i + 5, &Tok::Punct(')'))
            && is(i + 6, &Tok::Punct(']'));
        if !cfg_test {
            i += 1;
            continue;
        }
        // Skip to the end of the annotated item: the close of its first
        // top-level brace block, or a `;` for brace-less items.
        let mut j = i + 7;
        let mut depth = 0usize;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let end = j.min(tokens.len().saturating_sub(1));
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Flags `pub` items (not fields, not `pub use`, not `pub(restricted)`)
/// with no doc comment above their attributes.
fn missing_docs(tokens: &[Token], masked: &[bool], file: &str, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if masked[i] || t.tok != Tok::Ident("pub".to_string()) {
            continue;
        }
        // `pub(crate)` / `pub(super)` are not public API.
        let mut j = i + 1;
        if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('('))) {
            continue;
        }
        // Accept qualifier keywords, then require an item keyword.
        let mut kind = None;
        while let Some(Tok::Ident(word)) = tokens.get(j).map(|t| &t.tok) {
            if ITEM_KEYWORDS.contains(&word.as_str()) {
                // `pub const fn` is a fn; peek one more keyword.
                if word == "const" {
                    if let Some(Tok::Ident(next)) = tokens.get(j + 1).map(|t| &t.tok) {
                        if next == "fn" {
                            kind = Some("fn".to_string());
                            break;
                        }
                    }
                }
                kind = Some(word.clone());
                break;
            }
            if !ITEM_PREFIXES.contains(&word.as_str()) {
                break; // `pub use`, `pub name:` field, …
            }
            j += 1;
        }
        let Some(kind) = kind else { continue };
        // Walk backwards over attributes (`#[...]` groups); the token
        // before them must be a doc comment.
        let mut k = i;
        let documented = loop {
            if k == 0 {
                break false;
            }
            k -= 1;
            match &tokens[k].tok {
                Tok::DocComment => break true,
                Tok::LineComment(_) => continue,
                Tok::Punct(']') => {
                    // Skip back over the bracket group and its `#`.
                    let mut depth = 1usize;
                    while k > 0 && depth > 0 {
                        k -= 1;
                        match tokens[k].tok {
                            Tok::Punct(']') => depth += 1,
                            Tok::Punct('[') => depth -= 1,
                            _ => {}
                        }
                    }
                    if k > 0 && tokens[k - 1].tok == Tok::Punct('#') {
                        k -= 1;
                    }
                }
                _ => break false,
            }
        };
        if !documented {
            let name = match tokens.get(j + 1).map(|t| &t.tok) {
                Some(Tok::Ident(n)) => format!(" `{n}`"),
                _ => String::new(),
            };
            out.push(Finding::new(
                file,
                t.line,
                "missing-docs",
                format!("public {kind}{name} has no doc comment"),
            ));
        }
    }
}

/// Whether the comment on `line` or the unbroken comment block directly
/// above it contains `needle`.
fn comment_block_contains(
    comments: &BTreeMap<u32, String>,
    code_lines: &BTreeSet<u32>,
    line: u32,
    needle: &str,
) -> bool {
    if comments.get(&line).is_some_and(|t| t.contains(needle)) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l > 0 && !code_lines.contains(&l) {
        match comments.get(&l) {
            Some(text) => {
                if text.contains(needle) {
                    return true;
                }
            }
            None => return false, // blank line ends the block
        }
        l -= 1;
    }
    false
}

/// A parsed `check:allow(<lint>)` or `check:allow-file(<lint>)` comment.
pub(crate) struct Suppression {
    pub(crate) line: u32,
    pub(crate) lint: String,
    /// `check:allow-file`: covers the whole file, not just the adjacent
    /// line. For blanket exemptions with one documented justification
    /// (e.g. an algorithm file whose hash tables are sorted before any
    /// result escapes).
    pub(crate) file_scoped: bool,
}

/// Parses every `check:allow`/`check:allow-file` comment, emitting
/// hygiene findings for bare (unjustified) or unknown-lint suppressions.
pub(crate) fn collect_suppressions(
    comments: &BTreeMap<u32, String>,
    findings: &mut Vec<Finding>,
    file: &str,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (&line, text) in comments {
        for (needle, file_scoped) in [("check:allow(", false), ("check:allow-file(", true)] {
            collect_one_form(text, line, needle, file_scoped, file, findings, &mut out);
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn collect_one_form(
    text: &str,
    line: u32,
    needle: &str,
    file_scoped: bool,
    file: &str,
    findings: &mut Vec<Finding>,
    out: &mut Vec<Suppression>,
) {
    let form = needle.trim_end_matches('(');
    let mut rest = text;
    while let Some(at) = rest.find(needle) {
        rest = &rest[at + needle.len()..];
        let Some(close) = rest.find(')') else {
            findings.push(Finding::new(
                file,
                line,
                "suppression",
                format!("unclosed `{form}(` comment"),
            ));
            break;
        };
        let name = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let known = LINTS.iter().any(|(n, _)| *n == name);
        // Hygiene findings name the lint the allow was attached to, both
        // in the message and in the structured `target` field.
        let mut meta = |message: String| {
            let mut f = Finding::new(file, line, "suppression", message);
            f.target = Some(name.clone());
            findings.push(f);
        };
        if !known {
            meta(format!("`{form}({name})` names an unknown lint"));
        }
        let justified = after
            .strip_prefix(':')
            .is_some_and(|why| !why.trim().is_empty());
        if !justified {
            meta(format!(
                "bare `{form}({name})` targeting lint `{name}` without a justification; \
                 write `// {form}({name}): <why>`"
            ));
        }
        if known && justified {
            out.push(Suppression {
                line,
                lint: name,
                file_scoped,
            });
        }
        rest = after;
    }
}

/// Whether a valid suppression for `lint` covers `line` (same line, or
/// within the unbroken comment block directly above).
pub(crate) fn suppression_covers(
    suppressions: &[Suppression],
    comments: &BTreeMap<u32, String>,
    code_lines: &BTreeSet<u32>,
    line: u32,
    lint: &str,
) -> bool {
    if suppressions.iter().any(|s| s.file_scoped && s.lint == lint) {
        return true;
    }
    let candidate = |l: u32| {
        suppressions
            .iter()
            .any(|s| !s.file_scoped && s.line == l && s.lint == lint)
    };
    if candidate(line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l > 0 && !code_lines.contains(&l) {
        if comments.get(&l).is_none() {
            return false;
        }
        if candidate(l) {
            return true;
        }
        l -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::policy_for;

    fn strict() -> CratePolicy {
        CratePolicy {
            name: "core",
            no_panic: true,
            deterministic: true,
            may_spawn: false,
        }
    }

    fn lint(src: &str) -> Vec<Finding> {
        lint_file("x.rs", src, &strict())
    }

    #[test]
    fn flags_panic_family_with_lines() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\nfn g() {\n    panic!(\"boom\")\n}";
        let f = lint(src);
        let panics: Vec<_> = f.iter().filter(|f| f.lint == "panic-in-lib").collect();
        assert_eq!(panics.len(), 2, "{f:?}");
        assert_eq!(panics[0].line, 2);
        assert_eq!(panics[1].line, 5);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn strings_and_comments_never_match() {
        let src = "fn f() -> &'static str {\n    // .unwrap() is discussed here\n    \"don't panic!(now)\"\n}";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn wall_clock_and_collections_flag_deterministic_crates_only() {
        let src = "use std::collections::HashMap;\nfn f() { let _ = Instant::now(); }";
        let f = lint(src);
        assert!(f
            .iter()
            .any(|f| f.lint == "unordered-collections" && f.line == 1));
        assert!(f.iter().any(|f| f.lint == "wall-clock" && f.line == 2));
        let lenient = policy_for("bench").expect("bench in table");
        assert!(lint_file("x.rs", src, &lenient).is_empty());
    }

    #[test]
    fn relaxed_needs_adjacent_justification() {
        let bad = "fn f(a: &A) { a.store(1, Ordering::Relaxed); }";
        assert!(lint(bad).iter().any(|f| f.lint == "relaxed-ordering"));
        let same_line = "fn f(a: &A) { a.store(1, Ordering::Relaxed); } // relaxed: tally";
        assert!(lint(same_line).is_empty(), "{:?}", lint(same_line));
        let above = "fn f(a: &A) {\n    // relaxed: independent tally, wraps a\n    // longer explanation.\n    a.store(1, Ordering::Relaxed);\n}";
        assert!(lint(above).is_empty(), "{:?}", lint(above));
        let blank_breaks =
            "fn f(a: &A) {\n    // relaxed: too far away\n\n    a.store(1, Ordering::Relaxed);\n}";
        assert!(lint(blank_breaks)
            .iter()
            .any(|f| f.lint == "relaxed-ordering"));
    }

    #[test]
    fn suppressions_require_justification_and_known_lints() {
        let good = "fn f(x: Option<u32>) {\n    // check:allow(panic-in-lib): invariant documented here.\n    x.unwrap();\n}";
        assert!(lint(good).is_empty(), "{:?}", lint(good));
        let bare = "fn f(x: Option<u32>) {\n    // check:allow(panic-in-lib)\n    x.unwrap();\n}";
        let f = lint(bare);
        assert!(f.iter().any(|f| f.lint == "suppression"), "{f:?}");
        assert!(
            f.iter().any(|f| f.lint == "panic-in-lib"),
            "bare allow must not suppress: {f:?}"
        );
        let unknown = "// check:allow(no-such-lint): whatever\nfn f() {}";
        assert!(lint(unknown).iter().any(|f| f.lint == "suppression"));
    }

    #[test]
    fn file_scoped_suppressions_cover_the_whole_file() {
        let src = "//! Module.\n// check:allow-file(unordered-collections): tables are\n// sorted before any result escapes this module.\nuse std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }";
        let f = lint(src);
        assert!(f.iter().all(|f| f.lint != "unordered-collections"), "{f:?}");
        let bare = "// check:allow-file(unordered-collections)\nuse std::collections::HashMap;";
        let f = lint(bare);
        assert!(f.iter().any(|f| f.lint == "suppression"), "{f:?}");
        assert!(f.iter().any(|f| f.lint == "unordered-collections"), "{f:?}");
    }

    #[test]
    fn missing_docs_flags_pub_items_not_fields_or_use() {
        let src = "pub fn naked() {}\n/// Documented.\npub fn dressed() {}\npub use std::fmt;\npub struct S {\n    pub field: u32,\n}";
        let f = lint(src);
        let md: Vec<_> = f.iter().filter(|f| f.lint == "missing-docs").collect();
        // `naked` and `S` lack docs; `dressed`, the re-export and the
        // field are not flagged (field docs are rustc's job).
        assert_eq!(md.len(), 2, "{md:?}");
        assert_eq!(md[0].line, 1);
        assert!(md[1].message.contains("`S`"));
    }

    #[test]
    fn attributes_between_doc_and_item_are_skipped() {
        let src = "/// Documented.\n#[derive(Debug)]\n#[repr(C)]\npub struct S(u32);";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn clone_in_hot_path_files_is_flagged() {
        let src = "fn f(v: &[u32]) -> Vec<u32> {\n    let a = v.to_vec();\n    a.clone()\n}";
        let f = lint_file("crates/core/src/buc.rs", src, &strict());
        let hits: Vec<_> = f.iter().filter(|f| f.lint == "no-clone-hot-path").collect();
        assert_eq!(hits.len(), 2, "{f:?}");
        assert_eq!(hits[0].line, 2);
        // The same source is fine in a file outside the hot-path list.
        let elsewhere = lint_file("crates/core/src/cell.rs", src, &strict());
        assert!(
            elsewhere.iter().all(|f| f.lint != "no-clone-hot-path"),
            "{elsewhere:?}"
        );
        // Test code in a hot-path file stays exempt.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t(v: &[u32]) { let _ = v.to_vec(); }\n}";
        let f = lint_file("crates/core/src/partition.rs", test_src, &strict());
        assert!(f.iter().all(|f| f.lint != "no-clone-hot-path"), "{f:?}");
        // The affinity kernels and the skip list joined the hot-path
        // list when they became executor workloads (ROADMAP item 1).
        for file in [
            "crates/core/src/asl.rs",
            "crates/core/src/aht.rs",
            "crates/skiplist/src/lib.rs",
        ] {
            let f = lint_file(file, src, &strict());
            assert!(
                f.iter().any(|f| f.lint == "no-clone-hot-path"),
                "{file}: {f:?}"
            );
        }
    }

    #[test]
    fn hot_path_clone_is_suppressible() {
        let src = "fn f(v: &[u32]) -> Vec<u32> {\n    // check:allow(no-clone-hot-path): one-time setup copy.\n    v.to_vec()\n}";
        let f = lint_file("crates/core/src/buc.rs", src, &strict());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn thread_spawn_is_policy_gated() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert!(lint(src).iter().any(|f| f.lint == "thread-spawn"));
        let serve = policy_for("serve").expect("serve in table");
        assert!(lint_file("x.rs", src, &serve)
            .iter()
            .all(|f| f.lint != "thread-spawn"));
    }
}
