//! The concurrency model checker: exhaustive bounded exploration of the
//! serving engine's worker-pool interleavings.
//!
//! `icecube-serve` is compiled into this binary with its `icecube_loom`
//! feature, so every mutex, channel, spawn and join inside
//! [`CubeServer`] goes through the schedule-controlled shims in
//! `shims/loom`. Each scenario below runs the real server — real
//! worker threads, real queue, real response channels — under
//! [`loom::explore`], which replays it once per distinct interleaving
//! and fails on deadlock, lost wake-up, or a panic (the scenarios
//! assert no double-completion and bit-for-bit agreement with a
//! sequential oracle).

use icecube_cluster::ClusterConfig;
use icecube_core::fixtures::sales;
use icecube_core::{run_parallel, Algorithm, CubeStore, IcebergQuery};
use icecube_lattice::CuboidMask;
use icecube_serve::request::{Request, Response};
use icecube_serve::{CubeServer, ShardedCube};
use loom::Budget;

/// Outcome of one scenario's exploration.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Scenario name, for reporting.
    pub name: &'static str,
    /// Distinct interleavings executed.
    pub schedules: usize,
    /// Whether the schedule space was exhausted within budget.
    pub exhausted: bool,
    /// First failing interleaving, if any.
    pub failure: Option<String>,
}

/// Outcome of the whole concurrency pass.
#[derive(Debug)]
pub struct ConcurrencyReport {
    /// Per-scenario results, in execution order.
    pub scenarios: Vec<ScenarioResult>,
}

impl ConcurrencyReport {
    /// Total interleavings executed across scenarios.
    pub fn total_schedules(&self) -> usize {
        self.scenarios.iter().map(|s| s.schedules).sum()
    }

    /// Whether every scenario completed without a failing interleaving.
    pub fn passed(&self) -> bool {
        self.scenarios.iter().all(|s| s.failure.is_none())
    }
}

/// The tiny cube every scenario serves: the 3-dimensional sales fixture
/// computed once, outside the model.
fn tiny_store() -> CubeStore {
    let rel = sales();
    let q = IcebergQuery::count_cube(3, 1);
    let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2))
        .expect("fixture cube computes");
    CubeStore::from_outcome(3, 1, out)
}

/// Answers `req` on a one-worker server outside the model: the
/// sequential oracle every explored interleaving must reproduce.
fn oracle(cube: &ShardedCube, req: &Request) -> Response {
    let server = CubeServer::start(cube.clone(), 1).expect("one worker starts");
    let handle = server.handle().expect("server is running");
    handle.call(req.clone()).expect("oracle request is served")
}

/// Runs every scenario, giving each `budget` schedules.
pub fn run(budget: usize) -> ConcurrencyReport {
    let store = tiny_store();
    let cube = ShardedCube::new(&store, 2);
    let point = Request::Point {
        cuboid: CuboidMask::from_dims(&[0, 1]),
        key: vec![0, 0],
    };
    let cuboid = Request::Cuboid {
        cuboid: CuboidMask::from_dims(&[0]),
        minsup: 1,
    };
    let point_want = oracle(&cube, &point);
    let cuboid_want = oracle(&cube, &cuboid);
    // A second generation of the same cube — sales ingested twice, every
    // count doubled — so the epoch-swap scenario can tell the epochs apart.
    let doubled_store = {
        let mut rel = sales();
        rel.extend_from(&sales()).expect("fixture schemas match");
        let q = IcebergQuery::count_cube(3, 1);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2))
            .expect("fixture cube computes");
        CubeStore::from_outcome(3, 1, out)
    };
    let doubled_want = oracle(&ShardedCube::new(&doubled_store, 2), &point);

    let scenarios: Vec<ScenarioResult> = vec![
        {
            // One client, two workers: submit, await, then verify the
            // response channel carries exactly one completion.
            let report = loom::explore(
                Budget {
                    max_schedules: budget,
                },
                || {
                    let server =
                        CubeServer::start(cube.clone(), 2).expect("workers start in the model");
                    let handle = server.handle().expect("server is running");
                    let rx = handle.submit(point.clone()).expect("queue accepts work");
                    let got = rx.recv().expect("a worker completes the request");
                    assert_eq!(got.epoch, 1, "no refresh ran, so epoch 1 answers");
                    assert_eq!(
                        got.response, point_want,
                        "oracle divergence on point request"
                    );
                    assert!(
                        rx.try_recv().is_err(),
                        "double completion: two responses for one request"
                    );
                    drop(handle);
                    drop(server); // joins both workers through the shutdown path
                },
            );
            ScenarioResult {
                name: "submit-await-shutdown",
                schedules: report.schedules,
                exhausted: report.exhausted,
                failure: report.failure,
            }
        },
        {
            // Two client threads race distinct requests into a shared
            // two-worker pool; each must get its own oracle answer.
            let report = loom::explore(
                Budget {
                    max_schedules: budget,
                },
                || {
                    let server =
                        CubeServer::start(cube.clone(), 2).expect("workers start in the model");
                    let clients: Vec<_> = [(&point, &point_want), (&cuboid, &cuboid_want)]
                        .into_iter()
                        .map(|(req, want)| {
                            let handle = server.handle().expect("server is running");
                            let req = req.clone();
                            let want = want.clone();
                            loom::thread::spawn(move || {
                                let got = handle.call(req).expect("request is served");
                                assert_eq!(got, want, "oracle divergence under racing clients");
                            })
                        })
                        .collect();
                    for c in clients {
                        c.join().expect("client thread completes");
                    }
                    drop(server);
                },
            );
            ScenarioResult {
                name: "racing-clients",
                schedules: report.schedules,
                exhausted: report.exhausted,
                failure: report.failure,
            }
        },
        {
            // Epoch-swap refresh racing a query: a client calls while the
            // main thread publishes a new generation. Whatever the
            // interleaving, the answer must be attributable to exactly
            // one published epoch — it carries an epoch tag and must
            // match *that* epoch's sequential oracle, never a blend.
            let report = loom::explore(
                Budget {
                    max_schedules: budget,
                },
                || {
                    let server =
                        CubeServer::start(cube.clone(), 1).expect("worker starts in the model");
                    let handle = server.handle().expect("server is running");
                    let client = {
                        let handle = handle.clone();
                        let req = point.clone();
                        let want1 = point_want.clone();
                        let want2 = doubled_want.clone();
                        loom::thread::spawn(move || {
                            let got = handle.call_tagged(req).expect("request is served");
                            let want = match got.epoch {
                                1 => &want1,
                                2 => &want2,
                                other => panic!("answer from unpublished epoch {other}"),
                            };
                            assert_eq!(
                                &got.response,
                                want,
                                "epoch {epoch} answered from another epoch's cube",
                                epoch = got.epoch
                            );
                        })
                    };
                    let epoch = server.refresh(&doubled_store).expect("same dimensionality");
                    assert_eq!(epoch, 2, "the refresh publishes epoch 2");
                    client.join().expect("client thread completes");
                    assert_eq!(server.epoch(), 2);
                    drop(handle);
                    drop(server);
                },
            );
            ScenarioResult {
                name: "epoch-swap-refresh",
                schedules: report.schedules,
                exhausted: report.exhausted,
                failure: report.failure,
            }
        },
        {
            // Worker death mid-stream: a worker is killed while the pool
            // serves; the survivor must still answer the oracle's value,
            // and the dead worker's reply channel must error rather than
            // deadlock a waiting client.
            let report = loom::explore(
                Budget {
                    max_schedules: budget,
                },
                || {
                    let server =
                        CubeServer::start(cube.clone(), 2).expect("workers start in the model");
                    let handle = server.handle().expect("server is running");
                    let observer = handle.kill_worker().expect("queue accepts the kill");
                    let got = handle.call(point.clone()).expect("the survivor serves");
                    assert_eq!(got, point_want, "oracle divergence after a worker death");
                    assert!(observer.recv().is_err(), "a dead worker must never answer");
                    drop(handle);
                    drop(server); // joins the dead worker and the survivor
                },
            );
            ScenarioResult {
                name: "worker-death",
                schedules: report.schedules,
                exhausted: report.exhausted,
                failure: report.failure,
            }
        },
        {
            // Total worker loss: once the last worker dies the queue must
            // disconnect, turning later calls into typed `ShutDown` errors
            // — never a hang on a queue nobody will ever drain.
            let report = loom::explore(
                Budget {
                    max_schedules: budget,
                },
                || {
                    let server =
                        CubeServer::start(cube.clone(), 1).expect("worker starts in the model");
                    let handle = server.handle().expect("server is running");
                    let observer = handle.kill_worker().expect("queue accepts the kill");
                    assert!(observer.recv().is_err(), "the sole worker exited");
                    match handle.call(point.clone()) {
                        Err(icecube_serve::ServeError::ShutDown) => {}
                        other => panic!("expected ShutDown after losing every worker: {other:?}"),
                    }
                    drop(handle);
                    drop(server);
                },
            );
            ScenarioResult {
                name: "total-worker-loss",
                schedules: report.schedules,
                exhausted: report.exhausted,
                failure: report.failure,
            }
        },
        {
            // Immediate shutdown: workers may still be parked on the
            // empty queue when the sender closes; none may hang.
            let report = loom::explore(
                Budget {
                    max_schedules: budget,
                },
                || {
                    let server =
                        CubeServer::start(cube.clone(), 2).expect("workers start in the model");
                    drop(server);
                },
            );
            ScenarioResult {
                name: "idle-shutdown",
                schedules: report.schedules,
                exhausted: report.exhausted,
                failure: report.failure,
            }
        },
    ];

    ConcurrencyReport { scenarios }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_shutdown_is_clean_and_small() {
        let store = tiny_store();
        let cube = ShardedCube::new(&store, 2);
        let report = loom::explore(Budget { max_schedules: 400 }, || {
            let server = CubeServer::start(cube.clone(), 2).expect("workers start");
            drop(server);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.schedules >= 2, "expected >1 interleaving");
    }

    #[test]
    fn full_pass_finds_no_failures() {
        // A reduced budget keeps the test fast; `icecube-check
        // concurrency` runs the full exploration.
        let report = run(120);
        assert!(report.passed(), "{:?}", report.scenarios);
        assert!(report.total_schedules() >= 100, "{report:?}");
    }
}
