//! The interprocedural passes over the workspace call graph.
//!
//! Three passes share the graph [`crate::callgraph`] builds (DESIGN
//! §12):
//!
//! 1. **panic-path** — no pub fn of a `no_panic` policy crate may
//!    transitively reach a panic source (`panic!`, `.unwrap()`,
//!    `.expect()`, `[]`-indexing, `unreachable!`, …). The finding is
//!    anchored at the *sink* (where the panic lives) and prints the
//!    call path file:line-by-file:line from the nearest pub root, so a
//!    suppression sits next to the code whose invariant justifies it.
//! 2. **alloc-hot-path** — no fn reachable from the configured kernel
//!    recursion roots (BUC/ASL/AHT/PT) may reach an allocating
//!    constructor. The roots are the *inner* recursion fns, so the
//!    scratch-arena prologue (which allocates by design, before
//!    recursion starts) is naturally out of scope.
//! 3. **lock-order + spawn-site** — functions in the lock scope
//!    (`exec/native.rs`, `crates/serve/src/`) get a transitive
//!    first-acquisition lock sequence; two functions acquiring the same
//!    two locks in opposite order are both flagged. Thread spawns must
//!    sit in the allowed files (or the crates allowed to own threads).
//!
//! All passes honour the `// check:allow(<lint>): <why>` grammar at the
//! finding's anchor line, share `--json`, and follow the binary's
//! exit-code contract.

use crate::callgraph::{CallGraph, Sink, SinkKind, SourceFile, Unresolved};
use crate::lints;
use crate::policy::policy_for;
use crate::report::{finding_json, json_str, Finding, SCHEMA};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};

/// A recursion root: `(file suffix, impl owner, fn name)`.
pub type RootSpec = (&'static str, Option<&'static str>, &'static str);

/// What the passes treat as roots, scope and allowed spawn sites.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Roots of the hot-path allocation pass.
    pub alloc_roots: Vec<RootSpec>,
    /// File prefixes/suffixes whose fns join the lock-order pass.
    pub lock_scope: Vec<&'static str>,
    /// File suffixes allowed to spawn threads.
    pub spawn_allowed_files: Vec<&'static str>,
    /// Crates allowed to spawn threads anywhere (tooling, benches).
    pub spawn_allowed_crates: Vec<&'static str>,
}

impl AnalyzeConfig {
    /// The workspace's own configuration: the BUC/ASL/AHT/PT recursion
    /// cores, the executor-and-server lock scope, and the two sanctioned
    /// spawn files.
    pub fn workspace_default() -> AnalyzeConfig {
        AnalyzeConfig {
            alloc_roots: vec![
                // BUC: the depth-first and breadth-per-partition cores.
                ("core/src/buc.rs", Some("Engine"), "df"),
                ("core/src/buc.rs", Some("Engine"), "df_descend"),
                ("core/src/buc.rs", Some("Engine"), "bpp_from_root"),
                ("core/src/buc.rs", Some("Engine"), "bpp_recurse"),
                // ASL: per-task cuboid construction and emission.
                ("core/src/asl.rs", None, "prefix_reuse"),
                ("core/src/asl.rs", None, "subset_create"),
                ("core/src/asl.rs", None, "scratch_create"),
                ("core/src/asl.rs", None, "emit_list"),
                // AHT: the collapse/upsert loop and table emission.
                ("core/src/aht.rs", Some("AffinityHashTable"), "upsert"),
                ("core/src/aht.rs", Some("AffinityHashTable"), "collapse"),
                ("core/src/aht.rs", None, "emit_table"),
                // PT: the shared sort-cache fill.
                ("core/src/pt.rs", Some("SortCache"), "prepare"),
            ],
            lock_scope: vec!["crates/exec/src/native.rs", "crates/serve/src/"],
            spawn_allowed_files: vec!["crates/exec/src/native.rs", "crates/serve/src/server.rs"],
            spawn_allowed_crates: vec!["bench", "check"],
        }
    }
}

/// What one analyzer run produced.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Findings after suppressions, sorted (file, line, lint, message).
    pub findings: Vec<Finding>,
    /// Method calls the resolver gave up on (reported, not failing).
    pub unresolved: Vec<Unresolved>,
    /// Node count, for the summary line.
    pub fn_count: usize,
    /// Edge count, for the summary line.
    pub edge_count: usize,
}

/// Runs all three passes over in-memory sources. The fixture tests use
/// this directly with synthetic configs.
pub fn analyze_sources(sources: &[SourceFile], config: &AnalyzeConfig) -> AnalysisReport {
    let graph = CallGraph::build(sources);
    let mut raw: BTreeSet<(String, u32, &'static str, String)> = BTreeSet::new();

    panic_pass(&graph, &mut raw);
    alloc_pass(&graph, config, &mut raw);
    lock_pass(&graph, config, &mut raw);
    spawn_pass(&graph, config, &mut raw);

    // Suppressions: same grammar and adjacency rules as the lint pass.
    // Hygiene findings are the lint pass's job — discarded here so one
    // bare allow is not double-reported.
    let mut suppressions = BTreeMap::new();
    for (path, parsed) in &graph.files {
        let mut discard = Vec::new();
        let sup = lints::collect_suppressions(&parsed.comment_lines, &mut discard, path);
        suppressions.insert(path.clone(), sup);
    }
    let findings: Vec<Finding> = raw
        .into_iter()
        .filter(|(file, line, lint, _)| match graph.files.get(file) {
            Some(parsed) => !lints::suppression_covers(
                &suppressions[file],
                &parsed.comment_lines,
                &parsed.code_lines,
                *line,
                lint,
            ),
            None => true, // config errors have no source to suppress in
        })
        .map(|(file, line, lint, message)| Finding::new(&file, line, lint, message))
        .collect();

    let fn_count = graph.nodes.len();
    let edge_count = graph.edge_count();
    AnalysisReport {
        findings,
        unresolved: graph.unresolved,
        fn_count,
        edge_count,
    }
}

/// Runs the workspace-default analysis over `crates/*/src/**/*.rs`
/// under `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<AnalysisReport> {
    let mut sources = Vec::new();
    let crates_dir = root.join("crates");
    let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for crate_dir in crates {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            sources.push(SourceFile {
                path: rel,
                crate_name: crate_name.clone(),
                src: fs::read_to_string(&file)?,
            });
        }
    }
    Ok(analyze_sources(
        &sources,
        &AnalyzeConfig::workspace_default(),
    ))
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders an [`AnalysisReport`] as the v2 JSON document.
pub fn to_json(report: &AnalysisReport) -> String {
    let mut out = format!(
        "{{\"schema\":{},\"mode\":\"analyze\",\"fns\":{},\"edges\":{},\"unresolved\":[",
        json_str(SCHEMA),
        report.fn_count,
        report.edge_count,
    );
    for (i, u) in report.unresolved.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cands: Vec<String> = u.candidates.iter().map(|c| json_str(c)).collect();
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"method\":{},\"candidates\":[{}]}}",
            json_str(&u.file),
            u.line,
            json_str(&u.method),
            cands.join(","),
        ));
    }
    out.push_str("],\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&finding_json(f));
    }
    out.push_str(&format!("],\"count\":{}}}", report.findings.len()));
    out
}

/// In the BFS forest, how a node was reached: its parent and the
/// call-site line inside the parent.
type Parent = Option<(usize, u32)>;

/// Multi-source BFS over the call graph. Returns `parents[n]`:
/// `None` if unreached, `Some(None)` for roots, `Some(Some((p, line)))`
/// for nodes reached from parent `p` at `p`'s `line`. Root order is the
/// sorted node order, so nearest-root ties break deterministically.
fn bfs(graph: &CallGraph, roots: &[usize]) -> Vec<Option<Parent>> {
    let mut parents: Vec<Option<Parent>> = vec![None; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for &r in roots {
        if parents[r].is_none() {
            parents[r] = Some(None);
            queue.push_back(r);
        }
    }
    while let Some(n) = queue.pop_front() {
        for &(callee, line) in &graph.edges[n] {
            if parents[callee].is_none() {
                parents[callee] = Some(Some((n, line)));
                queue.push_back(callee);
            }
        }
    }
    parents
}

/// The `file:line -> … -> file:line` chain from `node`'s root down to
/// `sink`, plus the qualified name of the root it starts at.
fn path_to(
    graph: &CallGraph,
    parents: &[Option<Parent>],
    node: usize,
    sink: &Sink,
) -> (String, String) {
    let mut hops = vec![format!("{}:{}", graph.nodes[node].file, sink.line)];
    let mut at = node;
    while let Some(Some((parent, line))) = parents[at] {
        hops.push(format!("{}:{}", graph.nodes[parent].file, line));
        at = parent;
    }
    hops.reverse();
    (graph.nodes[at].qualified(), hops.join(" -> "))
}

/// Pass 1: panic sources reachable from pub fns of no-panic crates.
fn panic_pass(graph: &CallGraph, out: &mut BTreeSet<(String, u32, &'static str, String)>) {
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.is_pub && policy_for(&n.crate_name).is_some_and(|p| p.no_panic))
        .map(|(i, _)| i)
        .collect();
    let parents = bfs(graph, &roots);
    for (n, reached) in parents.iter().enumerate() {
        if reached.is_none() {
            continue;
        }
        for sink in &graph.sinks[n] {
            if sink.kind != SinkKind::Panic {
                continue;
            }
            let (root, path) = path_to(graph, &parents, n, sink);
            out.insert((
                graph.nodes[n].file.clone(),
                sink.line,
                "panic-path",
                format!("`{}` reachable from pub fn `{root}` via {path}", sink.what),
            ));
        }
    }
}

/// Pass 2: allocating constructors reachable from the recursion roots.
fn alloc_pass(
    graph: &CallGraph,
    config: &AnalyzeConfig,
    out: &mut BTreeSet<(String, u32, &'static str, String)>,
) {
    let mut roots = Vec::new();
    for &(suffix, owner, name) in &config.alloc_roots {
        let found = graph.nodes.iter().position(|n| {
            n.file.ends_with(suffix) && n.owner.as_deref() == owner && n.name == name
        });
        match found {
            Some(i) => roots.push(i),
            None => {
                // A silently missing root would hollow the pass out; a
                // renamed kernel fn must update the config.
                let label = match owner {
                    Some(o) => format!("{o}::{name}"),
                    None => name.to_string(),
                };
                out.insert((
                    suffix.to_string(),
                    0,
                    "alloc-hot-path",
                    format!("configured recursion root `{label}` not found in `{suffix}`"),
                ));
            }
        }
    }
    let parents = bfs(graph, &roots);
    for (n, reached) in parents.iter().enumerate() {
        if reached.is_none() {
            continue;
        }
        for sink in &graph.sinks[n] {
            if sink.kind != SinkKind::Alloc {
                continue;
            }
            let (root, path) = path_to(graph, &parents, n, sink);
            out.insert((
                graph.nodes[n].file.clone(),
                sink.line,
                "alloc-hot-path",
                format!(
                    "`{}` allocates in the recursion reachable from `{root}` via {path}",
                    sink.what
                ),
            ));
        }
    }
}

/// Pass 3a: opposite-order lock pairs among the scoped functions.
fn lock_pass(
    graph: &CallGraph,
    config: &AnalyzeConfig,
    out: &mut BTreeSet<(String, u32, &'static str, String)>,
) {
    let in_scope = |file: &str| {
        config
            .lock_scope
            .iter()
            .any(|s| file.starts_with(s) || file.ends_with(s))
    };
    let scoped: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| in_scope(&n.file))
        .map(|(i, _)| i)
        .collect();
    // Transitive first-acquisition sequences, memoized; cycles cut by
    // the in-progress marker.
    let mut memo: Vec<Option<Vec<String>>> = vec![None; graph.nodes.len()];
    let mut in_progress = vec![false; graph.nodes.len()];
    for &s in &scoped {
        lock_seq(graph, s, &mut memo, &mut in_progress);
    }
    for (a, &fa) in scoped.iter().enumerate() {
        let seq_a = memo[fa].clone().unwrap_or_default();
        for &fb in scoped.iter().skip(a + 1) {
            let seq_b = memo[fb].clone().unwrap_or_default();
            for (i, la) in seq_a.iter().enumerate() {
                for lb in seq_a.iter().skip(i + 1) {
                    let pa = seq_b.iter().position(|l| l == la);
                    let pb = seq_b.iter().position(|l| l == lb);
                    if let (Some(pa), Some(pb)) = (pa, pb) {
                        if pb < pa {
                            // Opposite order: flag both functions.
                            for (site, other) in [(fa, fb), (fb, fa)] {
                                out.insert((
                                    graph.nodes[site].file.clone(),
                                    graph.nodes[site].line,
                                    "lock-order",
                                    format!(
                                        "`{}` acquires locks `{la}` and `{lb}` in the opposite \
                                         order of `{}` ({}:{})",
                                        graph.nodes[site].qualified(),
                                        graph.nodes[other].qualified(),
                                        graph.nodes[other].file,
                                        graph.nodes[other].line,
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The ordered list of distinct lock identities `node` acquires,
/// directly or transitively, in first-acquisition order. Anonymous
/// `<expr>` receivers are dropped — an unidentifiable lock cannot be
/// ordered against anything.
fn lock_seq(
    graph: &CallGraph,
    node: usize,
    memo: &mut Vec<Option<Vec<String>>>,
    in_progress: &mut Vec<bool>,
) -> Vec<String> {
    if let Some(seq) = &memo[node] {
        return seq.clone();
    }
    if in_progress[node] {
        return Vec::new(); // recursion: the cycle adds nothing new
    }
    in_progress[node] = true;
    // Interleave own lock sinks and call edges in source-line order.
    let mut items: Vec<(u32, Result<&str, usize>)> = Vec::new();
    for sink in &graph.sinks[node] {
        if sink.kind == SinkKind::Lock && sink.what != "<expr>" {
            items.push((sink.line, Ok(&sink.what)));
        }
    }
    for &(callee, line) in &graph.edges[node] {
        items.push((line, Err(callee)));
    }
    items.sort_by_key(|&(line, _)| line);
    let mut seq: Vec<String> = Vec::new();
    let push = |name: String, seq: &mut Vec<String>| {
        if !seq.contains(&name) {
            seq.push(name);
        }
    };
    for (_, item) in items {
        match item {
            Ok(name) => push(name.to_string(), &mut seq),
            Err(callee) => {
                for name in lock_seq(graph, callee, memo, in_progress) {
                    push(name, &mut seq);
                }
            }
        }
    }
    in_progress[node] = false;
    memo[node] = Some(seq.clone());
    seq
}

/// Pass 3b: thread spawns outside the allowed files and crates.
fn spawn_pass(
    graph: &CallGraph,
    config: &AnalyzeConfig,
    out: &mut BTreeSet<(String, u32, &'static str, String)>,
) {
    for (n, node) in graph.nodes.iter().enumerate() {
        if config
            .spawn_allowed_files
            .iter()
            .any(|f| node.file.ends_with(f))
            || config
                .spawn_allowed_crates
                .iter()
                .any(|c| node.crate_name == *c)
        {
            continue;
        }
        for sink in &graph.sinks[n] {
            if sink.kind == SinkKind::Spawn {
                out.insert((
                    node.file.clone(),
                    sink.line,
                    "spawn-site",
                    format!(
                        "`{}` spawns a thread in `{}`, which is not an allowed spawn site",
                        node.qualified(),
                        node.file,
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(path: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            src: src.to_string(),
        }
    }

    fn empty_config() -> AnalyzeConfig {
        AnalyzeConfig {
            alloc_roots: vec![],
            lock_scope: vec![],
            spawn_allowed_files: vec![],
            spawn_allowed_crates: vec![],
        }
    }

    #[test]
    fn panic_pass_reports_the_transitive_path() {
        // `core` is a no-panic crate; the panic is two hops from the
        // pub root and must be reported at the sink with the full path.
        let report = analyze_sources(
            &[source(
                "crates/core/src/lib.rs",
                "core",
                "pub fn entry(x: Option<u32>) {\n    step(x);\n}\nfn step(x: Option<u32>) {\n    deep(x);\n}\nfn deep(x: Option<u32>) {\n    x.unwrap();\n}",
            )],
            &empty_config(),
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        let f = &report.findings[0];
        assert_eq!(f.lint, "panic-path");
        assert_eq!((f.file.as_str(), f.line), ("crates/core/src/lib.rs", 8));
        assert!(f.message.contains("core::entry"), "{}", f.message);
        assert!(
            f.message.contains(
                "crates/core/src/lib.rs:2 -> crates/core/src/lib.rs:5 -> crates/core/src/lib.rs:8"
            ),
            "{}",
            f.message
        );
    }

    #[test]
    fn non_pub_and_unreachable_panics_are_not_findings() {
        let report = analyze_sources(
            &[source(
                "crates/core/src/lib.rs",
                "core",
                "fn private(x: Option<u32>) {\n    x.unwrap();\n}\npub fn entry() {}",
            )],
            &empty_config(),
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn lenient_crates_get_no_panic_pass() {
        let report = analyze_sources(
            &[source(
                "crates/bench/src/lib.rs",
                "bench",
                "pub fn entry(x: Option<u32>) {\n    x.unwrap();\n}",
            )],
            &empty_config(),
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn alloc_pass_follows_calls_from_configured_roots() {
        let mut config = empty_config();
        config.alloc_roots = vec![("kern.rs", None, "recurse")];
        let report = analyze_sources(
            &[source(
                "crates/data/src/kern.rs",
                "data",
                "fn recurse(n: usize) {\n    helper(n);\n}\nfn helper(n: usize) {\n    let _v = Vec::with_capacity(n);\n}\nfn cold() {\n    let _v = Vec::new();\n}",
            )],
            &config,
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        let f = &report.findings[0];
        assert_eq!(f.lint, "alloc-hot-path");
        assert_eq!(f.line, 5, "the sink, not the root");
        assert!(f.message.contains("Vec::with_capacity"), "{}", f.message);
        assert!(f.message.contains("data::recurse"), "{}", f.message);
    }

    #[test]
    fn missing_alloc_roots_are_loud() {
        let mut config = empty_config();
        config.alloc_roots = vec![("kern.rs", Some("Gone"), "vanished")];
        let report = analyze_sources(
            &[source("crates/data/src/kern.rs", "data", "fn present() {}")],
            &config,
        );
        assert_eq!(report.findings.len(), 1);
        assert!(
            report.findings[0].message.contains("Gone::vanished"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn lock_pass_flags_opposite_order_pairs_in_both_functions() {
        let mut config = empty_config();
        config.lock_scope = vec!["crates/serve/src/"];
        let report = analyze_sources(
            &[source(
                "crates/serve/src/pool.rs",
                "serve",
                "struct P;\nimpl P {\n    fn ab(&self) {\n        self.a.lock();\n        self.b.lock();\n    }\n    fn ba(&self) {\n        self.b.lock();\n        self.a.lock();\n    }\n    fn also_ab(&self) {\n        self.a.lock();\n        self.b.lock();\n    }\n}",
            )],
            &config,
        );
        let locks: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.lint == "lock-order")
            .collect();
        // ab/ba and also_ab/ba invert; ab/also_ab agree. Two findings
        // per inverting pair, anchored at each function.
        assert_eq!(locks.len(), 4, "{locks:?}");
        assert!(locks.iter().any(|f| f.line == 3), "anchored at ab");
        assert!(locks.iter().any(|f| f.line == 7), "anchored at ba");
        assert!(locks.iter().any(|f| f.line == 11), "anchored at also_ab");
    }

    #[test]
    fn lock_order_is_transitive_through_calls() {
        let mut config = empty_config();
        config.lock_scope = vec!["crates/serve/src/"];
        let report = analyze_sources(
            &[source(
                "crates/serve/src/pool.rs",
                "serve",
                "struct P;\nimpl P {\n    fn outer(&self) {\n        self.a.lock();\n        self.tail();\n    }\n    fn tail(&self) {\n        self.b.lock();\n    }\n    fn ba(&self) {\n        self.b.lock();\n        self.a.lock();\n    }\n}",
            )],
            &config,
        );
        let locks: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.lint == "lock-order")
            .collect();
        // outer transitively acquires a then b; ba inverts it. tail
        // alone holds one lock and conflicts with nobody.
        assert_eq!(locks.len(), 2, "{locks:?}");
        assert!(locks.iter().any(|f| f.line == 3));
        assert!(locks.iter().any(|f| f.line == 10));
    }

    #[test]
    fn spawn_pass_enforces_the_allowed_sites() {
        let mut config = empty_config();
        config.spawn_allowed_files = vec!["crates/exec/src/native.rs"];
        config.spawn_allowed_crates = vec!["bench"];
        let report = analyze_sources(
            &[
                source(
                    "crates/exec/src/native.rs",
                    "exec",
                    "fn pool() { std::thread::spawn(|| {}); }",
                ),
                source(
                    "crates/bench/src/lib.rs",
                    "bench",
                    "fn drive() { std::thread::spawn(|| {}); }",
                ),
                source(
                    "crates/data/src/lib.rs",
                    "data",
                    "fn rogue() { std::thread::spawn(|| {}); }",
                ),
            ],
            &config,
        );
        let spawns: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.lint == "spawn-site")
            .collect();
        assert_eq!(spawns.len(), 1, "{spawns:?}");
        assert_eq!(spawns[0].file, "crates/data/src/lib.rs");
    }

    #[test]
    fn allows_silence_exactly_their_finding() {
        let report = analyze_sources(
            &[source(
                "crates/core/src/lib.rs",
                "core",
                "pub fn entry(x: Option<u32>, y: Option<u32>) {\n    // check:allow(panic-path): x is Some by construction here.\n    x.unwrap();\n    y.unwrap();\n}",
            )],
            &empty_config(),
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(
            report.findings[0].line, 4,
            "only the allowed line is silenced"
        );
    }

    #[test]
    fn json_is_versioned_and_lists_unresolved() {
        let report = analyze_sources(
            &[source(
                "crates/core/src/lib.rs",
                "core",
                "struct X;\nimpl X { fn go(&self) {} }\nstruct Y;\nimpl Y { fn go(&self) {} }\nfn f(t: bool) {\n    let h = pick(t);\n    h.go();\n}\nfn pick(_: bool) -> X { X }",
            )],
            &empty_config(),
        );
        let j = to_json(&report);
        assert!(j.starts_with("{\"schema\":\"icecube-check-report/v2\",\"mode\":\"analyze\""));
        assert!(j.contains("\"method\":\"go\""), "{j}");
        assert!(j.contains("core::X::go"), "{j}");
    }

    #[test]
    fn output_is_deterministic_across_runs() {
        let sources = [
            source(
                "crates/core/src/b.rs",
                "core",
                "pub fn b(x: Option<u32>) { x.unwrap(); }",
            ),
            source(
                "crates/core/src/a.rs",
                "core",
                "pub fn a(v: &[u32]) { let _ = v[0]; }",
            ),
        ];
        let mut reversed = sources.clone();
        reversed.reverse();
        let one = to_json(&analyze_sources(&sources, &empty_config()));
        let two = to_json(&analyze_sources(&reversed, &empty_config()));
        assert_eq!(one, two, "byte-identical regardless of input order");
    }
}
