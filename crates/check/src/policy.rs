//! The per-crate invariant policy table: which lints bind where.
//!
//! The workspace separates *deterministic simulation* crates (the
//! cluster model and cube algorithms, which must replay bit-for-bit),
//! *serving* crates (which must never unwind a worker on bad input),
//! and harness crates (bench, the checker itself) where panicking on a
//! broken precondition is the right call. One table encodes that split
//! so the lint pass and the humans reading findings agree on the rules.

/// What one crate is held to.
#[derive(Debug, Clone, Copy)]
pub struct CratePolicy {
    /// Directory name under `crates/`.
    pub name: &'static str,
    /// Library code must not contain panic-family calls
    /// (`unwrap`/`expect`/`panic!`/`assert!`/`unreachable!`/…): errors
    /// must be typed. Test code is exempt.
    pub no_panic: bool,
    /// Deterministic-simulation crate: no wall-clock reads
    /// (`Instant::now`, `SystemTime`) and no unordered collections
    /// (`HashMap`/`HashSet`) whose iteration order could leak into
    /// results.
    pub deterministic: bool,
    /// Whether the crate may spawn OS threads directly.
    pub may_spawn: bool,
}

/// The workspace policy table. Every crate under `crates/` must appear;
/// the lint pass reports a finding for unlisted crates so new crates
/// pick a policy deliberately.
pub const POLICIES: &[CratePolicy] = &[
    CratePolicy {
        name: "data",
        no_panic: false,
        deterministic: false,
        may_spawn: false,
    },
    CratePolicy {
        name: "skiplist",
        no_panic: false,
        deterministic: false,
        may_spawn: false,
    },
    CratePolicy {
        name: "lattice",
        no_panic: false,
        deterministic: true,
        may_spawn: false,
    },
    CratePolicy {
        name: "trace",
        no_panic: true,
        deterministic: true,
        may_spawn: false,
    },
    CratePolicy {
        name: "cluster",
        no_panic: false,
        deterministic: true,
        may_spawn: false,
    },
    CratePolicy {
        name: "core",
        no_panic: true,
        deterministic: true,
        may_spawn: false,
    },
    CratePolicy {
        // Execution backends: the native pool is the one sanctioned
        // thread owner outside serving code, but spawning is confined to
        // its module via a file-level allow, so the crate default stays
        // strict. Not `deterministic`: the native backend reads wall
        // clocks for trace spans by design.
        name: "exec",
        no_panic: true,
        deterministic: false,
        may_spawn: false,
    },
    CratePolicy {
        name: "online",
        no_panic: true,
        deterministic: false,
        may_spawn: false,
    },
    CratePolicy {
        name: "serve",
        no_panic: true,
        deterministic: false,
        may_spawn: true,
    },
    CratePolicy {
        name: "bench",
        no_panic: false,
        deterministic: false,
        may_spawn: true,
    },
    CratePolicy {
        name: "check",
        no_panic: false,
        deterministic: false,
        may_spawn: true,
    },
];

/// Looks up the policy for a crate directory name.
pub fn policy_for(name: &str) -> Option<CratePolicy> {
    POLICIES.iter().find(|p| p.name == name).copied()
}
