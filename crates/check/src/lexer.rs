//! A hand-rolled, token-level Rust lexer: just enough fidelity for
//! invariant linting without a syntax tree.
//!
//! The lexer understands the things that make naive `grep`-style linting
//! lie: line and (nested) block comments, doc comments, string/raw
//! string/byte-string/char literals, and the `'a` lifetime vs `'a'`
//! char-literal ambiguity. Everything else is emitted as identifier,
//! single-character punctuation, or literal tokens tagged with their
//! 1-based source line, so lint rules can match token *sequences*
//! (`Ordering :: Relaxed`, `. unwrap (`) instead of substrings.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// A single punctuation character (`:`, `.`, `(`, `#`, `!`, …).
    Punct(char),
    /// Any literal (string, raw string, char, number), contents dropped.
    Literal,
    /// A doc comment (`///`, `//!`, `/** */`, `/*! */`).
    DocComment,
    /// A regular line comment's text (after `//`), kept for suppression
    /// and justification matching.
    LineComment(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Lexes `src` into a token stream. Unterminated constructs consume to
/// end of input rather than erroring: the linter must never panic on the
/// code it audits.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.string();
                    self.push(Tok::Literal, line);
                }
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '\'' => self.quote(line),
                _ if c.is_alphabetic() || c == '_' => self.ident(line),
                _ if c.is_ascii_digit() => {
                    self.number();
                    self.push(Tok::Literal, line);
                }
                _ => {
                    self.bump();
                    if !c.is_whitespace() {
                        self.push(Tok::Punct(c), line);
                    }
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // the two slashes
                     // `///` (but not `////`) and `//!` are doc comments.
        let doc = match self.peek(0) {
            Some('/') => self.peek(1) != Some('/'),
            Some('!') => true,
            _ => false,
        };
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if doc {
            self.push(Tok::DocComment, line);
        } else {
            self.push(Tok::LineComment(text), line);
        }
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // `/*`
                     // `/**` (but not `/***` or the empty `/**/`) and `/*!` are docs.
        let doc = match self.peek(0) {
            Some('*') => self.peek(1) != Some('*') && self.peek(1) != Some('/'),
            Some('!') => true,
            _ => false,
        };
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        if doc {
            self.push(Tok::DocComment, line);
        } else {
            self.push(Tok::LineComment(text), line);
        }
    }

    /// Consumes a `"`-delimited string (escape-aware), cursor on the `"`.
    fn string(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns false
    /// when the `r`/`b` is just the start of an identifier.
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let mut ahead = 1usize;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            // Byte char literal: `b'x'` or `b'\n'`.
            self.bump(); // b
            self.bump(); // '
            if self.peek(0) == Some('\\') {
                self.bump();
            }
            self.bump(); // the byte
            self.bump(); // closing '
            self.push(Tok::Literal, line);
            return true;
        }
        let raw = self.peek(0) != Some('b') || ahead == 2;
        let mut hashes = 0usize;
        while raw && self.peek(ahead) == Some('#') {
            hashes += 1;
            ahead += 1;
        }
        if self.peek(ahead) != Some('"') {
            return false; // an identifier starting with r/b
        }
        if !raw && hashes == 0 && ahead == 1 {
            // b"…": plain byte string, escape rules like a normal string.
            self.bump(); // b
            self.string();
            self.push(Tok::Literal, line);
            return true;
        }
        for _ in 0..=ahead {
            self.bump(); // prefix, hashes and opening quote
        }
        // Raw string: ends at `"` followed by `hashes` hashes, no escapes.
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for h in 0..hashes {
                    if self.peek(h) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Tok::Literal, line);
        true
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal),
    /// cursor on the `'`.
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        let lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && self.peek(2) != Some('\'');
        if lifetime {
            self.bump(); // '
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            // Lifetimes carry no lint signal; drop them.
            return;
        }
        self.bump(); // opening '
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump(); // escape payload ('\n', '\'', '\\', '\x..' start)
            while self.peek(0) != Some('\'') && self.peek(0).is_some() {
                self.bump(); // rest of '\x7f' / '\u{..}' style escapes
            }
        } else {
            self.bump(); // the char
        }
        self.bump(); // closing '
        self.push(Tok::Literal, line);
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            name.push(self.peek(0).unwrap_or('_'));
            self.bump();
        }
        self.push(Tok::Ident(name), line);
    }

    /// Numbers: digits plus alphanumeric suffixes (`0x1f`, `1_000u64`,
    /// `1e9`). Dots are NOT consumed, so `0..n` lexes as `0 . . n`.
    fn number(&mut self) {
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            self.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn code_inside_strings_and_comments_is_not_tokenized() {
        let src = r#"
            let a = "x.unwrap()"; // calls .unwrap() later
            /* panic!("no") */
            let b = r#double#;
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"panic".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let src = r##"let s = r#"contains "quotes" and unwrap()"#; after()"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(ids.contains(&"after".to_string()), "{ids:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; g()";
        let ids = idents(src);
        assert!(ids.contains(&"g".to_string()), "{ids:?}");
        // The char literal did not swallow `; g()`.
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.tok == Tok::Literal));
    }

    #[test]
    fn doc_comments_are_distinguished_from_line_comments() {
        let src = "/// doc\n//! inner doc\n// plain relaxed: reason\nfn f() {}";
        let toks = lex(src);
        let docs = toks.iter().filter(|t| t.tok == Tok::DocComment).count();
        assert_eq!(docs, 2);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::LineComment(s) if s.contains("relaxed: reason"))));
    }

    #[test]
    fn lines_are_tracked_across_multiline_constructs() {
        let src = "let a = \"multi\nline\";\nfn f() {}\n/* c\nc */\nfn g() {}";
        let toks = lex(src);
        let line_of = |name: &str| {
            toks.iter()
                .find(|t| t.tok == Tok::Ident(name.to_string()))
                .map(|t| t.line)
        };
        assert_eq!(line_of("f"), Some(3));
        assert_eq!(line_of("g"), Some(6));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ fn real() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn".to_string(), "real".to_string()]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = lex("0..n");
        let dots = toks.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(dots, 2);
    }
}
