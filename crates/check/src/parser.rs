//! A lightweight item/fn/block parser over the token stream: just
//! enough structure for interprocedural analysis without a real AST.
//!
//! Where [`crate::lexer`] gives the lint pass honest *tokens*, this
//! module gives the analysis passes honest *functions*: every `fn` in a
//! file with its impl owner, visibility, `#[cfg(test)]` status, simple
//! local type bindings, and the ordered list of body events the passes
//! care about — method calls (with a best-effort receiver chain), path
//! calls, macro uses, and `[]`-indexing. The grammar subset is
//! documented in DESIGN §12; anything outside it degrades to "no event"
//! or an unresolvable receiver, never to a wrong edge.

use crate::lexer::{lex, Tok, Token};
use std::collections::{BTreeMap, BTreeSet};

/// Keywords that can precede `(` or `[` without being a call or an
/// index expression (`if (..)`, `&mut [u32]`, `return (..)`, …).
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "mut", "ref", "else",
    "let", "fn", "pub", "use", "mod", "impl", "where", "unsafe", "dyn", "box", "break", "continue",
    "struct", "enum", "trait", "const", "static", "type", "crate", "self", "Self", "super",
    "async", "await", "true", "false",
];

/// One parsed source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every function definition, in source order.
    pub fns: Vec<FnDef>,
    /// Line-comment text per line (for suppression matching).
    pub comment_lines: BTreeMap<u32, String>,
    /// Lines holding at least one code token (comment blocks end here).
    pub code_lines: BTreeSet<u32>,
}

/// One function definition and the analysis-relevant events of its body.
#[derive(Debug)]
pub struct FnDef {
    /// Bare function name (`df`, `run`, `new`).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (`Engine`, `CubeServer`).
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` item.
    pub is_test: bool,
    /// Best-effort local type bindings: parameter `name: Type` and
    /// `let name = Type::…` / `let name: Type` forms. `self` maps to
    /// the impl owner at resolution time, not here.
    pub bindings: BTreeMap<String, String>,
    /// Body events in source order.
    pub events: Vec<Event>,
}

/// One body event with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// 1-based source line.
    pub line: u32,
    /// What happened.
    pub kind: EventKind,
}

/// The event kinds the analysis passes consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// `recv.name(..)` — `chain` is the dotted identifier chain of the
    /// receiver (`["self"]`, `["x"]`, `["self","scratch","pool"]`),
    /// empty when the receiver is a complex expression.
    Method { chain: Vec<String>, name: String },
    /// `a::b::c(..)` or a bare `f(..)` (one segment).
    PathCall { segments: Vec<String> },
    /// `name!(..)` / `name![..]` / `name!{..}`.
    MacroUse { name: String },
    /// `expr[..]` indexing (a panic source).
    Index,
}

/// Parses one file. Never fails: unparseable constructs contribute no
/// functions or events rather than errors — the analyzer must not panic
/// on the code it audits.
pub fn parse_file(src: &str) -> ParsedFile {
    let tokens = lex(src);
    let mask = crate::lints::test_mask(&tokens);
    let mut out = ParsedFile::default();
    for t in &tokens {
        match &t.tok {
            Tok::LineComment(text) => {
                let entry = out.comment_lines.entry(t.line).or_default();
                entry.push(' ');
                entry.push_str(text);
            }
            Tok::DocComment => {}
            _ => {
                out.code_lines.insert(t.line);
            }
        }
    }
    let code: Vec<(Token, bool)> = tokens
        .iter()
        .zip(&mask)
        .filter(|(t, _)| !matches!(t.tok, Tok::LineComment(_) | Tok::DocComment))
        .map(|(t, &m)| (t.clone(), m))
        .collect();
    let mut p = Parser {
        code,
        pos: 0,
        depth: 0,
        owners: Vec::new(),
    };
    out.fns = p.run();
    out
}

struct Parser {
    code: Vec<(Token, bool)>,
    pos: usize,
    depth: usize,
    /// `(type name, brace depth the impl/trait was seen at)`.
    owners: Vec<(String, usize)>,
}

impl Parser {
    fn ident(&self, i: usize) -> Option<&str> {
        match self.code.get(i).map(|t| &t.0.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.code.get(i).map(|t| &t.0.tok), Some(Tok::Punct(p)) if *p == c)
    }

    fn line(&self, i: usize) -> u32 {
        self.code.get(i).map_or(0, |t| t.0.line)
    }

    fn run(&mut self) -> Vec<FnDef> {
        let mut fns = Vec::new();
        while self.pos < self.code.len() {
            match self.code[self.pos].0.tok.clone() {
                Tok::Ident(id) if id == "impl" => self.handle_impl(),
                Tok::Ident(id) if id == "trait" => {
                    // `trait Name …` — default methods get the trait as
                    // their owner. (`impl Trait for T` is handled above.)
                    if let Some(name) = self.ident(self.pos + 1) {
                        self.owners.push((name.to_string(), self.depth));
                    }
                    self.pos += 1;
                }
                Tok::Ident(id) if id == "fn" && self.ident(self.pos + 1).is_some() => {
                    if let Some(def) = self.parse_fn() {
                        fns.push(def);
                    }
                }
                Tok::Punct('{') => {
                    self.depth += 1;
                    self.pos += 1;
                }
                Tok::Punct('}') => {
                    self.depth = self.depth.saturating_sub(1);
                    while self.owners.last().is_some_and(|(_, d)| *d >= self.depth) {
                        self.owners.pop();
                    }
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        fns
    }

    /// `impl [<generics>] TypePath [for TypePath] [where …] {` — records
    /// the implemented-on type's last path segment as the owner.
    fn handle_impl(&mut self) {
        self.pos += 1; // `impl`
        if self.punct(self.pos, '<') {
            self.skip_angles();
        }
        let mut owner = None;
        while self.pos < self.code.len() {
            match &self.code[self.pos].0.tok {
                Tok::Ident(id) if id == "for" => {
                    owner = None; // the trait path; the type follows
                    self.pos += 1;
                }
                Tok::Ident(id) if id == "where" => break,
                Tok::Ident(id) => {
                    owner = Some(id.clone());
                    self.pos += 1;
                }
                Tok::Punct('<') => self.skip_angles(),
                Tok::Punct(':') | Tok::Punct('&') | Tok::Punct('(') | Tok::Punct(')') => {
                    self.pos += 1;
                }
                Tok::Punct('{') => break,
                _ => {
                    self.pos += 1;
                }
            }
        }
        if let Some(owner) = owner {
            self.owners.push((owner, self.depth));
        }
    }

    /// Skips a balanced `<…>` group, cursor on the `<`. `->` arrows
    /// inside (e.g. `Fn(usize) -> bool`) do not close the group.
    fn skip_angles(&mut self) {
        let mut depth = 0usize;
        let mut prev_dash = false;
        while self.pos < self.code.len() {
            match &self.code[self.pos].0.tok {
                Tok::Punct('<') => {
                    depth += 1;
                    prev_dash = false;
                }
                Tok::Punct('>') => {
                    if !prev_dash {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            self.pos += 1;
                            return;
                        }
                    }
                    prev_dash = false;
                }
                Tok::Punct('-') => prev_dash = true,
                _ => prev_dash = false,
            }
            self.pos += 1;
        }
    }

    /// Whether the item at `fn_pos` is unrestricted `pub`, looking back
    /// over qualifier keywords (`const`, `async`, `unsafe`, `extern "C"`).
    fn is_pub_at(&self, fn_pos: usize) -> bool {
        let mut k = fn_pos;
        while k > 0 {
            k -= 1;
            match &self.code[k].0.tok {
                Tok::Ident(id)
                    if matches!(id.as_str(), "const" | "async" | "unsafe" | "extern") =>
                {
                    continue;
                }
                Tok::Literal => continue, // extern "C"
                Tok::Ident(id) if id == "pub" => return true,
                Tok::Punct(')') => {
                    // `pub(crate)` / `pub(super)`: restricted, not pub.
                    return false;
                }
                _ => return false,
            }
        }
        false
    }

    fn parse_fn(&mut self) -> Option<FnDef> {
        let fn_pos = self.pos;
        let name = self.ident(fn_pos + 1)?.to_string();
        let mut def = FnDef {
            name,
            owner: self.owners.last().map(|(o, _)| o.clone()),
            line: self.line(fn_pos),
            is_pub: self.is_pub_at(fn_pos),
            is_test: self.code[fn_pos].1,
            bindings: BTreeMap::new(),
            events: Vec::new(),
        };
        self.pos = fn_pos + 2;
        if self.punct(self.pos, '<') {
            self.skip_angles();
        }
        if !self.punct(self.pos, '(') {
            return Some(def); // not a parameter list we understand
        }
        self.parse_params(&mut def);
        // Scan to the body `{` (angle-aware: `-> Vec<u32>` must not eat
        // the brace) or a terminating `;` (trait method declaration).
        let mut prev_dash = false;
        let mut angle = 0usize;
        while self.pos < self.code.len() {
            match &self.code[self.pos].0.tok {
                Tok::Punct('<') => {
                    angle += 1;
                    prev_dash = false;
                }
                Tok::Punct('>') => {
                    if !prev_dash {
                        angle = angle.saturating_sub(1);
                    }
                    prev_dash = false;
                }
                Tok::Punct('-') => prev_dash = true,
                Tok::Punct('{') if angle == 0 => {
                    self.pos += 1;
                    self.parse_body(&mut def);
                    return Some(def);
                }
                Tok::Punct(';') if angle == 0 => {
                    self.pos += 1;
                    return Some(def);
                }
                _ => prev_dash = false,
            }
            self.pos += 1;
        }
        Some(def)
    }

    /// Parses the parameter list (cursor on `(`), recording `name: Type`
    /// bindings. Pattern parameters (`(a, b): (u32, u32)`) are skipped.
    fn parse_params(&mut self, def: &mut FnDef) {
        let mut depth = 0usize;
        let mut at_param_start = false;
        while self.pos < self.code.len() {
            match &self.code[self.pos].0.tok {
                Tok::Punct('(') => {
                    depth += 1;
                    at_param_start = depth == 1;
                    self.pos += 1;
                }
                Tok::Punct(')') => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        return;
                    }
                }
                Tok::Punct(',') if depth == 1 => {
                    at_param_start = true;
                    self.pos += 1;
                }
                Tok::Punct('<') => self.skip_angles(),
                _ if at_param_start && depth == 1 => {
                    at_param_start = false;
                    self.parse_one_param(def);
                }
                _ => self.pos += 1,
            }
        }
    }

    /// One parameter at the cursor: `[&][mut] name: [&][mut] Type…`.
    fn parse_one_param(&mut self, def: &mut FnDef) {
        while self.punct(self.pos, '&') || self.ident(self.pos) == Some("mut") {
            self.pos += 1;
        }
        let Some(name) = self.ident(self.pos) else {
            return; // pattern parameter or `self` handled elsewhere
        };
        let name = name.to_string();
        self.pos += 1;
        if name == "self" || name == "_" {
            return;
        }
        if !self.punct(self.pos, ':') || self.punct(self.pos + 1, ':') {
            return;
        }
        self.pos += 1; // `:`
        if let Some(ty) = self.parse_type_name() {
            def.bindings.insert(name, ty);
        }
    }

    /// Reads a type's last path segment at the cursor, skipping `&`,
    /// `mut`, `dyn` and `impl` prefixes. Leaves the cursor after the
    /// path (before any `<…>` generic arguments).
    fn parse_type_name(&mut self) -> Option<String> {
        while self.punct(self.pos, '&')
            || matches!(self.ident(self.pos), Some("mut" | "dyn" | "impl"))
        {
            self.pos += 1;
        }
        let mut last = None;
        while let Some(id) = self.ident(self.pos) {
            last = Some(id.to_string());
            self.pos += 1;
            if self.punct(self.pos, ':') && self.punct(self.pos + 1, ':') {
                self.pos += 2;
            } else {
                break;
            }
        }
        last
    }

    /// Walks a function body (cursor just past the opening `{`),
    /// collecting events until the matching `}`.
    fn parse_body(&mut self, def: &mut FnDef) {
        let mut depth = 1usize;
        while self.pos < self.code.len() {
            let line = self.line(self.pos);
            match self.code[self.pos].0.tok.clone() {
                Tok::Punct('{') => {
                    depth += 1;
                    self.pos += 1;
                }
                Tok::Punct('}') => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        return;
                    }
                }
                Tok::Punct('[') => {
                    if self.pos > 0 {
                        let indexable = match &self.code[self.pos - 1].0.tok {
                            Tok::Ident(id) => !KEYWORDS.contains(&id.as_str()),
                            Tok::Punct(')') | Tok::Punct(']') => true,
                            _ => false,
                        };
                        if indexable {
                            def.events.push(Event {
                                line,
                                kind: EventKind::Index,
                            });
                        }
                    }
                    self.pos += 1;
                }
                Tok::Punct('.') => {
                    if let Some(m) = self.ident(self.pos + 1) {
                        let m = m.to_string();
                        let mut after = self.pos + 2;
                        // `.collect::<Vec<_>>(`-style turbofish.
                        if self.punct(after, ':') && self.punct(after + 1, ':') {
                            if self.punct(after + 2, '<') {
                                let saved = self.pos;
                                self.pos = after + 2;
                                self.skip_angles();
                                after = self.pos;
                                self.pos = saved;
                            } else {
                                // `Enum::Variant` after a dot? Not a call.
                                self.pos += 2;
                                continue;
                            }
                        }
                        if self.punct(after, '(') {
                            let chain = self.chain_before(self.pos);
                            def.events.push(Event {
                                line,
                                kind: EventKind::Method { chain, name: m },
                            });
                            self.pos = after; // rescan from the `(`
                            continue;
                        }
                    }
                    self.pos += 1;
                }
                Tok::Ident(id) => {
                    // Part of a path or method name already considered?
                    if self.pos > 0
                        && matches!(
                            self.code[self.pos - 1].0.tok,
                            Tok::Punct('.') | Tok::Punct(':')
                        )
                    {
                        self.pos += 1;
                        continue;
                    }
                    if id == "let" {
                        self.pos += 1;
                        self.parse_let(def);
                        continue;
                    }
                    if self.punct(self.pos + 1, '!') {
                        // `name!(..)` / `name![..]` / `name!{..}`; `x != y`
                        // has `=` after the `!` and is skipped.
                        let d = self.pos + 2;
                        if self.punct(d, '(') || self.punct(d, '[') || self.punct(d, '{') {
                            def.events.push(Event {
                                line,
                                kind: EventKind::MacroUse { name: id },
                            });
                            self.pos += 2;
                            continue;
                        }
                        self.pos += 1;
                        continue;
                    }
                    // Path call: `a::b::c(..)` or bare `f(..)`.
                    let mut segments = vec![id.clone()];
                    let mut j = self.pos + 1;
                    while self.punct(j, ':') && self.punct(j + 1, ':') {
                        if let Some(seg) = self.ident(j + 2) {
                            segments.push(seg.to_string());
                            j += 3;
                        } else {
                            break;
                        }
                    }
                    let mut call_at = j;
                    if self.punct(j, ':') && self.punct(j + 1, ':') && self.punct(j + 2, '<') {
                        let saved = self.pos;
                        self.pos = j + 2;
                        self.skip_angles();
                        call_at = self.pos;
                        self.pos = saved;
                    }
                    let is_call = self.punct(call_at, '(')
                        && !(segments.len() == 1 && KEYWORDS.contains(&segments[0].as_str()));
                    if is_call {
                        def.events.push(Event {
                            line,
                            kind: EventKind::PathCall { segments },
                        });
                    }
                    self.pos = j.max(self.pos + 1);
                }
                _ => self.pos += 1,
            }
        }
    }

    /// `let [mut] name [: Type] [= Type::…]` — records a binding when
    /// the type is syntactically evident.
    fn parse_let(&mut self, def: &mut FnDef) {
        if self.ident(self.pos) == Some("mut") {
            self.pos += 1;
        }
        let Some(name) = self.ident(self.pos) else {
            return; // pattern let
        };
        let name = name.to_string();
        if name == "_" {
            return;
        }
        self.pos += 1;
        if self.punct(self.pos, ':') && !self.punct(self.pos + 1, ':') {
            self.pos += 1;
            if let Some(ty) = self.parse_type_name() {
                def.bindings.insert(name, ty);
            }
            return;
        }
        if self.punct(self.pos, '=') && !self.punct(self.pos + 1, '=') {
            // `let x = Type::…` — uppercase first segment is a type.
            if let Some(first) = self.ident(self.pos + 1) {
                if first.chars().next().is_some_and(|c| c.is_uppercase())
                    && self.punct(self.pos + 2, ':')
                    && self.punct(self.pos + 3, ':')
                {
                    def.bindings.insert(name, first.to_string());
                }
            }
        }
    }

    /// The dotted identifier chain ending just before the `.` at `dot`:
    /// `self.scratch.pool.pop()` → `["self","scratch","pool"]`. Complex
    /// receivers (call results, index results, literals) yield an empty
    /// chain.
    fn chain_before(&self, dot: usize) -> Vec<String> {
        let mut chain = Vec::new();
        let mut k = dot;
        while k > 0 {
            match &self.code[k - 1].0.tok {
                Tok::Ident(id) => {
                    chain.push(id.clone());
                    if k >= 2 && matches!(self.code[k - 2].0.tok, Tok::Punct('.')) {
                        k -= 2;
                    } else {
                        break;
                    }
                }
                _ => {
                    chain.clear();
                    break;
                }
            }
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<FnDef> {
        parse_file(src).fns
    }

    fn events_of(def: &FnDef) -> Vec<&EventKind> {
        def.events.iter().map(|e| &e.kind).collect()
    }

    #[test]
    fn finds_free_and_impl_fns_with_owners() {
        let src = "pub fn free() {}\nstruct S;\nimpl S {\n    fn method(&self) {}\n    pub fn public(&self) {}\n}\nimpl Default for S {\n    fn default() -> Self { S }\n}";
        let fs = fns(src);
        let names: Vec<(Option<&str>, &str, bool)> = fs
            .iter()
            .map(|f| (f.owner.as_deref(), f.name.as_str(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                (None, "free", true),
                (Some("S"), "method", false),
                (Some("S"), "public", true),
                (Some("S"), "default", false),
            ]
        );
    }

    #[test]
    fn pub_crate_is_not_pub() {
        let src = "pub(crate) fn a() {}\npub fn b() {}\npub const fn c() {}";
        let fs = fns(src);
        assert!(!fs[0].is_pub);
        assert!(fs[1].is_pub);
        assert!(fs[2].is_pub);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}";
        let fs = fns(src);
        assert!(!fs[0].is_test);
        assert!(fs[1].is_test);
    }

    #[test]
    fn method_calls_carry_receiver_chains() {
        let src = "fn f(&mut self) {\n    self.helper();\n    self.scratch.pool.pop();\n    x.run(1);\n    (a + b).go();\n}";
        let fs = fns(src);
        let ev = events_of(&fs[0]);
        assert_eq!(
            ev[0],
            &EventKind::Method {
                chain: vec!["self".into()],
                name: "helper".into()
            }
        );
        assert_eq!(
            ev[1],
            &EventKind::Method {
                chain: vec!["self".into(), "scratch".into(), "pool".into()],
                name: "pop".into()
            }
        );
        assert_eq!(
            ev[2],
            &EventKind::Method {
                chain: vec!["x".into()],
                name: "run".into()
            }
        );
        assert_eq!(
            ev[3],
            &EventKind::Method {
                chain: vec![],
                name: "go".into()
            }
        );
    }

    #[test]
    fn turbofish_method_calls_are_calls() {
        let src = "fn f(v: Vec<u32>) {\n    let a = v.iter().collect::<Vec<_>>();\n}";
        let fs = fns(src);
        assert!(events_of(&fs[0])
            .iter()
            .any(|e| matches!(e, EventKind::Method { name, .. } if name == "collect")));
    }

    #[test]
    fn path_calls_and_macros_and_indexing() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n    helper();\n    Vec::with_capacity(4);\n    std::mem::replace(&mut 1, 2);\n    panic!(\"no\");\n    let x = vec![1, 2];\n    v[i]\n}";
        let fs = fns(src);
        let ev = events_of(&fs[0]);
        assert!(ev.contains(&&EventKind::PathCall {
            segments: vec!["helper".into()]
        }));
        assert!(ev.contains(&&EventKind::PathCall {
            segments: vec!["Vec".into(), "with_capacity".into()]
        }));
        assert!(ev.contains(&&EventKind::PathCall {
            segments: vec!["std".into(), "mem".into(), "replace".into()]
        }));
        assert!(ev.contains(&&EventKind::MacroUse {
            name: "panic".into()
        }));
        assert!(ev.contains(&&EventKind::MacroUse { name: "vec".into() }));
        assert!(ev.contains(&&EventKind::Index));
    }

    #[test]
    fn slice_types_and_patterns_are_not_indexing() {
        let src = "fn f(v: &mut [u32]) {\n    let [a, b] = [1u32, 2];\n    let _t: [u32; 2] = [a, b];\n    if a != b {}\n}";
        let fs = fns(src);
        assert!(
            !events_of(&fs[0]).contains(&&EventKind::Index),
            "{:?}",
            fs[0].events
        );
    }

    #[test]
    fn bindings_from_params_and_lets() {
        let src = "fn f(rel: &Relation, n: usize) {\n    let part = Partitioner::new();\n    let cache: SortCache = make();\n}";
        let fs = fns(src);
        assert_eq!(
            fs[0].bindings.get("rel").map(String::as_str),
            Some("Relation")
        );
        assert_eq!(
            fs[0].bindings.get("part").map(String::as_str),
            Some("Partitioner")
        );
        assert_eq!(
            fs[0].bindings.get("cache").map(String::as_str),
            Some("SortCache")
        );
    }

    #[test]
    fn generics_where_clauses_and_return_types_do_not_confuse_bodies() {
        let src = "impl<'a, S: CellSink> Engine<'a, S> {\n    fn agg<F: Fn(usize) -> bool>(&mut self, s: u32) -> Vec<u32>\n    where\n        F: Clone,\n    {\n        self.update(s);\n        Vec::new()\n    }\n}\nfn after() { other(); }";
        let fs = fns(src);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert_eq!(fs[0].owner.as_deref(), Some("Engine"));
        assert!(events_of(&fs[0]).contains(&&EventKind::Method {
            chain: vec!["self".into()],
            name: "update".into()
        }));
        assert_eq!(fs[1].name, "after");
        assert_eq!(fs[1].owner, None, "owner stack must unwind");
    }

    #[test]
    fn trait_default_methods_get_the_trait_as_owner() {
        let src = "trait Sink {\n    fn emit(&mut self);\n    fn emit_twice(&mut self) {\n        self.emit();\n        self.emit();\n    }\n}";
        let fs = fns(src);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].owner.as_deref(), Some("Sink"));
        assert!(fs[0].events.is_empty(), "declaration has no body");
        assert_eq!(fs[1].events.len(), 2);
    }

    #[test]
    fn strings_and_comments_produce_no_events() {
        let src =
            "fn f() {\n    // self.x() and v[0] discussed\n    let s = \"panic!(no) v[0]\";\n}";
        let fs = fns(src);
        assert!(fs[0].events.is_empty(), "{:?}", fs[0].events);
    }
}
