//! `icecube-check`: workspace invariant lints, a call-graph analyzer,
//! and a deterministic concurrency model checker for the serving engine.
//!
//! Three engines share this binary:
//!
//! - **Lints** ([`lints`], [`workspace`]): a token-level pass over every
//!   crate's sources — comment- and string-aware via the hand-rolled
//!   [`lexer`] — enforcing the per-crate policies in [`policy`]
//!   (panic-freedom, determinism, thread discipline, memory-ordering
//!   justifications, public docs).
//! - **Analyze** ([`parser`], [`callgraph`], [`analyze`]): a lightweight
//!   item/fn parser feeding a workspace-wide call graph, over which
//!   three interprocedural passes run — panic-reachability from pub fns
//!   of no-panic crates, allocation reachability from the kernel
//!   recursion roots, and lock-order/spawn discipline (DESIGN §12).
//! - **Concurrency** ([`concurrency`]): the serving engine compiled
//!   against the schedule-controlled shims in `shims/loom`, explored
//!   across bounded interleavings of submit/steal/shutdown and checked
//!   against a sequential oracle.
//!
//! The `icecube-check` binary (see `main.rs`) wires all three into CI:
//! `cargo run -p icecube-check` exits non-zero on any finding.

pub mod analyze;
pub mod callgraph;
pub mod concurrency;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod policy;
pub mod report;
pub mod workspace;
