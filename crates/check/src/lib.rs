//! `icecube-check`: workspace invariant lints plus a deterministic
//! concurrency model checker for the serving engine.
//!
//! Two engines share this binary:
//!
//! - **Lints** ([`lints`], [`workspace`]): a token-level pass over every
//!   crate's sources — comment- and string-aware via the hand-rolled
//!   [`lexer`] — enforcing the per-crate policies in [`policy`]
//!   (panic-freedom, determinism, thread discipline, memory-ordering
//!   justifications, public docs).
//! - **Concurrency** ([`concurrency`]): the serving engine compiled
//!   against the schedule-controlled shims in `shims/loom`, explored
//!   across bounded interleavings of submit/steal/shutdown and checked
//!   against a sequential oracle.
//!
//! The `icecube-check` binary (see `main.rs`) wires both into CI:
//! `cargo run -p icecube-check` exits non-zero on any finding.

pub mod concurrency;
pub mod lexer;
pub mod lints;
pub mod policy;
pub mod report;
pub mod workspace;
