//! Finding representation and rendering (human text and JSON).

use std::fmt;

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name (the thing `// check:allow(<lint>)` names).
    pub lint: &'static str,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (suppress with `// check:allow({}): <why>`)",
            self.file, self.line, self.lint, self.message, self.lint
        )
    }
}

/// Renders findings as a JSON document (hand-rolled; the workspace
/// vendors no serde).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"lint\":{},\"message\":{}}}",
            json_str(&f.file),
            f.line,
            json_str(f.lint),
            json_str(&f.message),
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

/// Escapes a string for embedding in JSON.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_file_line_lint_and_suppression() {
        let f = Finding {
            file: "crates/core/src/store.rs".into(),
            line: 42,
            lint: "panic-in-lib",
            message: "`.unwrap()` in library code".into(),
        };
        let s = f.to_string();
        assert!(s.starts_with("crates/core/src/store.rs:42: [panic-in-lib]"));
        assert!(s.contains("check:allow(panic-in-lib)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let fs = vec![Finding {
            file: "a\"b.rs".into(),
            line: 1,
            lint: "wall-clock",
            message: "tab\there".into(),
        }];
        let j = to_json(&fs);
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("tab\\there"));
        assert_eq!(to_json(&[]), "{\"findings\":[],\"count\":0}");
    }
}
