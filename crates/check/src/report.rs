//! Finding representation and rendering (human text and JSON).

use std::fmt;

/// The `--json` schema identifier. Bumped whenever a field is added or
/// renamed so CI can validate structure before trusting content
/// (v2 added `schema` itself plus per-finding `target`).
pub const SCHEMA: &str = "icecube-check-report/v2";

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name (the thing `// check:allow(<lint>)` names).
    pub lint: &'static str,
    /// What is wrong.
    pub message: String,
    /// For `suppression` hygiene findings: the lint name the offending
    /// `check:allow` was attached to. `None` for ordinary findings.
    pub target: Option<String>,
}

impl Finding {
    /// An ordinary finding (no suppression target).
    pub fn new(file: &str, line: u32, lint: &'static str, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            lint,
            message,
            target: None,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (suppress with `// check:allow({}): <why>`)",
            self.file, self.line, self.lint, self.message, self.lint
        )
    }
}

/// Renders findings as a JSON document (hand-rolled; the workspace
/// vendors no serde).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = format!("{{\"schema\":{},\"findings\":[", json_str(SCHEMA));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&finding_json(f));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

/// One finding as a JSON object (shared by the lint and analyze modes).
pub fn finding_json(f: &Finding) -> String {
    let target = match &f.target {
        Some(t) => json_str(t),
        None => "null".to_string(),
    };
    format!(
        "{{\"file\":{},\"line\":{},\"lint\":{},\"target\":{},\"message\":{}}}",
        json_str(&f.file),
        f.line,
        json_str(f.lint),
        target,
        json_str(&f.message),
    )
}

/// Escapes a string for embedding in JSON.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_file_line_lint_and_suppression() {
        let f = Finding::new(
            "crates/core/src/store.rs",
            42,
            "panic-in-lib",
            "`.unwrap()` in library code".into(),
        );
        let s = f.to_string();
        assert!(s.starts_with("crates/core/src/store.rs:42: [panic-in-lib]"));
        assert!(s.contains("check:allow(panic-in-lib)"));
    }

    #[test]
    fn json_escapes_counts_and_versions() {
        let fs = vec![Finding::new("a\"b.rs", 1, "wall-clock", "tab\there".into())];
        let j = to_json(&fs);
        assert!(j.starts_with("{\"schema\":\"icecube-check-report/v2\""));
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("tab\\there"));
        assert!(j.contains("\"target\":null"));
        assert_eq!(
            to_json(&[]),
            "{\"schema\":\"icecube-check-report/v2\",\"findings\":[],\"count\":0}"
        );
    }

    #[test]
    fn suppression_findings_carry_their_target_lint() {
        let mut f = Finding::new("x.rs", 3, "suppression", "bare allow".into());
        f.target = Some("panic-in-lib".to_string());
        let j = to_json(&[f]);
        assert!(j.contains("\"target\":\"panic-in-lib\""), "{j}");
    }
}
