//! The `icecube-check` command-line entry point.
//!
//! ```text
//! icecube-check [lint|analyze|concurrency|all] [--json] [--budget N] [--root DIR]
//! ```
//!
//! Exit status: `0` when clean, `1` on findings or failing
//! interleavings, `2` on usage or I/O errors.

use icecube_check::report::{json_str, to_json};
use icecube_check::{analyze, concurrency, workspace};
use std::path::PathBuf;
use std::process::ExitCode;

/// Interleaving budget per concurrency scenario; five scenarios at
/// this budget comfortably clear the 1000-distinct-schedules floor the
/// checker promises.
const DEFAULT_BUDGET: usize = 1200;

struct Options {
    lint: bool,
    analyze: bool,
    concurrency: bool,
    json: bool,
    budget: usize,
    root: PathBuf,
}

fn usage() -> &'static str {
    "usage: icecube-check [lint|analyze|concurrency|all] [--json] [--budget N] [--root DIR]\n\
     \n\
     modes:\n\
     \x20 lint          run the workspace invariant lints\n\
     \x20 analyze       run the call-graph passes (panic/alloc reachability, lock order)\n\
     \x20 concurrency   explore serving-engine interleavings under the model\n\
     \x20 all           every mode (default)\n\
     \n\
     options:\n\
     \x20 --json        machine-readable output\n\
     \x20 --budget N    interleavings per concurrency scenario (default 1200)\n\
     \x20 --root DIR    repository root (default: the workspace this binary was built in)"
}

fn parse(args: &[String]) -> Result<Options, String> {
    // The binary lives at <root>/crates/check, so the workspace root is
    // two levels up from its manifest.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut opts = Options {
        lint: true,
        analyze: true,
        concurrency: true,
        json: false,
        budget: DEFAULT_BUDGET,
        root: default_root,
    };
    let mut mode_given = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "lint" | "analyze" | "concurrency" => {
                if mode_given {
                    return Err(format!(
                        "`{arg}` conflicts with an earlier mode; use `all` for everything"
                    ));
                }
                mode_given = true;
                opts.lint = arg == "lint";
                opts.analyze = arg == "analyze";
                opts.concurrency = arg == "concurrency";
            }
            "all" => {
                mode_given = true;
            }
            "--json" => opts.json = true,
            "--budget" => {
                let v = it.next().ok_or("--budget needs a number")?;
                opts.budget = v
                    .parse()
                    .map_err(|_| format!("--budget: `{v}` is not a number"))?;
                if opts.budget == 0 {
                    return Err("--budget must be at least 1".to_string());
                }
            }
            "--root" => {
                opts.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("icecube-check: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut failed = false;

    if opts.lint {
        let findings = match workspace::lint_workspace(&opts.root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!(
                    "icecube-check: cannot walk {root}: {e}",
                    root = opts.root.display()
                );
                return ExitCode::from(2);
            }
        };
        if opts.json {
            println!("{}", to_json(&findings));
        } else if findings.is_empty() {
            println!("lint: ok (0 findings)");
        } else {
            for f in &findings {
                println!("{f}");
            }
            println!("lint: {} finding(s)", findings.len());
        }
        failed |= !findings.is_empty();
    }

    if opts.analyze {
        let report = match analyze::analyze_workspace(&opts.root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!(
                    "icecube-check: cannot walk {root}: {e}",
                    root = opts.root.display()
                );
                return ExitCode::from(2);
            }
        };
        if opts.json {
            println!("{}", analyze::to_json(&report));
        } else {
            for f in &report.findings {
                println!("{f}");
            }
            println!(
                "analyze: {} finding(s); {} fns, {} edges, {} unresolved method call(s)",
                report.findings.len(),
                report.fn_count,
                report.edge_count,
                report.unresolved.len(),
            );
        }
        failed |= !report.findings.is_empty();
    }

    if opts.concurrency {
        let report = concurrency::run(opts.budget);
        if opts.json {
            let scenarios: Vec<String> = report
                .scenarios
                .iter()
                .map(|s| {
                    format!(
                        "{{\"name\":{},\"schedules\":{},\"exhausted\":{},\"failure\":{}}}",
                        json_str(s.name),
                        s.schedules,
                        s.exhausted,
                        s.failure
                            .as_deref()
                            .map_or_else(|| "null".to_string(), json_str),
                    )
                })
                .collect();
            println!(
                "{{\"scenarios\":[{}],\"total_schedules\":{},\"passed\":{}}}",
                scenarios.join(","),
                report.total_schedules(),
                report.passed(),
            );
        } else {
            for s in &report.scenarios {
                let state = match &s.failure {
                    Some(f) => format!("FAILED: {f}"),
                    None if s.exhausted => "ok (state space exhausted)".to_string(),
                    None => "ok (budget reached)".to_string(),
                };
                println!(
                    "concurrency: {name}: {state} [{n} interleavings]",
                    name = s.name,
                    n = s.schedules
                );
            }
            println!(
                "concurrency: {} interleavings across {} scenarios",
                report.total_schedules(),
                report.scenarios.len()
            );
        }
        failed |= !report.passed();
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
