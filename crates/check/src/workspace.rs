//! Walks the workspace tree and lints every crate's sources under its
//! policy.

use crate::lints::lint_file;
use crate::policy::policy_for;
use crate::report::Finding;
use std::fs;
use std::path::{Path, PathBuf};

/// Lints `crates/*/src/**/*.rs` under `root` (the repository root),
/// returning findings with repo-relative paths. Crates missing from the
/// policy table produce a `policy` finding instead of silently getting
/// no rules.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for crate_dir in crates {
        let name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let Some(policy) = policy_for(&name) else {
            findings.push(Finding::new(
                &format!("crates/{name}"),
                1,
                "policy",
                format!(
                    "crate `{name}` has no entry in the policy table \
                     (crates/check/src/policy.rs)"
                ),
            ));
            continue;
        };
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let source = fs::read_to_string(&file)?;
            findings.extend(lint_file(&rel, &source, &policy));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(findings)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
