//! Sequential-baseline micro-benchmark: host-time comparison of the
//! Chapter 2 cast (Naive, BUC, BPP-BUC, TopDown, PipeSort, PipeHash) on a
//! sparse and a dense workload.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use icecube_cluster::ClusterConfig;
use icecube_core::{run_sequential, IcebergQuery, SeqAlgorithm};
use icecube_data::{presets, SyntheticSpec};
use std::time::Duration;

fn bench_sequential(c: &mut Criterion) {
    let sparse = {
        let mut s = presets::baseline();
        s.tuples = 10_000;
        s.generate().expect("preset is valid")
    };
    let dense = SyntheticSpec::uniform(10_000, vec![6, 5, 4, 4, 3, 3, 2, 2, 2], 0x5e9)
        .generate()
        .expect("spec is valid");
    let cfg = ClusterConfig::fast_ethernet(1);
    let mut group = c.benchmark_group("sequential_cube");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for (name, rel) in [("sparse", &sparse), ("dense", &dense)] {
        let q = IcebergQuery::count_cube(rel.arity(), 2);
        for alg in SeqAlgorithm::all() {
            if alg == SeqAlgorithm::Naive {
                continue; // dominates the plot without adding signal
            }
            group.bench_with_input(BenchmarkId::new(alg.to_string(), name), &alg, |b, &alg| {
                b.iter(|| {
                    let out = run_sequential(alg, rel, &q, &cfg).expect("valid configuration");
                    black_box(out.cells.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);
