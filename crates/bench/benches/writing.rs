//! Writing-strategy micro-benchmark: depth-first BUC vs breadth-first
//! BPP-BUC over the same subtree (the engine-level ablation behind
//! Figure 3.6). Criterion measures host time; the simulated I/O gap is
//! asserted by `ablation_writing` in the experiments harness.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use icecube_cluster::{ClusterConfig, SimCluster};
use icecube_core::buc::{bpp_buc, buc_depth_first};
use icecube_core::cell::CellBuf;
use icecube_data::presets;
use icecube_lattice::TreeTask;
use std::time::Duration;

fn bench_writing(c: &mut Criterion) {
    let mut spec = presets::baseline();
    spec.tuples = 20_000;
    let rel = spec.generate().expect("preset is valid");
    let task = TreeTask::whole_lattice(rel.arity());
    let mut group = c.benchmark_group("buc_engines");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for minsup in [1u64, 2, 8] {
        group.bench_with_input(
            BenchmarkId::new("depth_first", minsup),
            &minsup,
            |b, &minsup| {
                b.iter(|| {
                    let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
                    let mut sink = CellBuf::counting();
                    buc_depth_first(&rel, minsup, task, &mut cluster.nodes[0], &mut sink);
                    black_box(sink.count)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("breadth_first", minsup),
            &minsup,
            |b, &minsup| {
                b.iter(|| {
                    let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
                    let mut sink = CellBuf::counting();
                    bpp_buc(&rel, minsup, task, &mut cluster.nodes[0], &mut sink);
                    black_box(sink.count)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_writing);
criterion_main!(benches);
