//! Partitioning micro-benchmark: the counting-sort partitioner (dense
//! dictionary-encoded values) against comparison sorting, BUC's hottest
//! primitive.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use icecube_cluster::{ClusterConfig, SimCluster};
use icecube_core::partition::{full_index, Partitioner};
use icecube_data::presets;
use std::time::Duration;

fn bench_partition(c: &mut Criterion) {
    let mut spec = presets::baseline();
    spec.tuples = 100_000;
    let rel = spec.generate().expect("preset is valid");
    let mut group = c.benchmark_group("partition_100k");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for dim in [0usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("counting_sort", format!("dim{dim}")),
            &dim,
            |b, &dim| {
                let mut part = Partitioner::new();
                b.iter(|| {
                    let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
                    let mut idx = full_index(&rel);
                    let mut groups = Vec::new();
                    let len = idx.len() as u32;
                    part.split(
                        &rel,
                        &mut idx,
                        (0, len),
                        dim,
                        &mut cluster.nodes[0],
                        &mut groups,
                    );
                    black_box(groups.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("comparison_sort", format!("dim{dim}")),
            &dim,
            |b, &dim| {
                b.iter(|| {
                    let mut idx = full_index(&rel);
                    idx.sort_unstable_by_key(|&i| rel.value(i as usize, dim));
                    black_box(idx.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
