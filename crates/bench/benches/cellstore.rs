//! Cell-store micro-benchmark: the skip list (ASL's choice) against a
//! `BTreeMap` and a `HashMap` as the cuboid cell container.
//!
//! The paper picks the skip list for incremental growth with a maintained
//! sort order; this bench quantifies what that costs/road against the
//! standard alternatives on the insert-or-update workload the algorithms
//! generate (many repeated keys, skewed values).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use icecube_core::agg::Aggregate;
use icecube_data::presets;
use icecube_skiplist::SkipList;
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

fn keys(n_tuples: usize, arity: usize) -> Vec<Vec<u32>> {
    let mut spec = presets::tiny(99);
    spec.tuples = n_tuples;
    let rel = spec.generate().expect("preset is valid");
    rel.rows()
        .map(|(row, _)| row[..arity.min(row.len())].to_vec())
        .collect()
}

fn bench_cellstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("cellstore_upsert");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let data = keys(n, 3);
        group.bench_with_input(BenchmarkId::new("skiplist", n), &data, |b, data| {
            b.iter(|| {
                let mut s: SkipList<Aggregate> = SkipList::new(3, 1);
                for k in data {
                    s.insert_or_update(k, || Aggregate::of(1), |a| a.update(1));
                }
                black_box(s.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("btreemap", n), &data, |b, data| {
            b.iter(|| {
                let mut s: BTreeMap<Vec<u32>, Aggregate> = BTreeMap::new();
                for k in data {
                    s.entry(k.clone())
                        .or_insert_with(Aggregate::empty)
                        .update(1);
                }
                black_box(s.len())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("hashmap_plus_sort", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut s: HashMap<Vec<u32>, Aggregate> = HashMap::new();
                    for k in data {
                        s.entry(k.clone())
                            .or_insert_with(Aggregate::empty)
                            .update(1);
                    }
                    // The cube output must be sorted; a hash store pays here.
                    let mut cells: Vec<_> = s.into_iter().collect();
                    cells.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    black_box(cells.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cellstore);
criterion_main!(benches);
