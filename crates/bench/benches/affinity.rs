//! Affinity micro-benchmark: what subset/prefix affinity saves ASL and PT
//! at the whole-algorithm level (host time; the virtual-time version is
//! the `ablation_affinity` experiment).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use icecube_cluster::ClusterConfig;
use icecube_core::{run_parallel_with, Algorithm, IcebergQuery, RunOptions};
use icecube_data::presets;
use std::time::Duration;

fn bench_affinity(c: &mut Criterion) {
    let mut spec = presets::baseline();
    spec.tuples = 8_000;
    let rel = spec.generate().expect("preset is valid");
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let cfg = ClusterConfig::fast_ethernet(4);
    let mut group = c.benchmark_group("affinity_scheduling");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for alg in [Algorithm::Asl, Algorithm::Pt] {
        for on in [true, false] {
            let label = if on { "on" } else { "off" };
            group.bench_with_input(BenchmarkId::new(alg.to_string(), label), &on, |b, &on| {
                let opts = RunOptions {
                    affinity: on,
                    ..RunOptions::counting()
                };
                b.iter(|| {
                    let out =
                        run_parallel_with(alg, &rel, &q, &cfg, &opts).expect("valid configuration");
                    black_box(out.total_cells)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_affinity);
criterion_main!(benches);
