//! Process-wide allocation accounting for the wall-clock benchmarks.
//!
//! The `bench` experiment reports each kernel's peak host-memory footprint
//! next to its median time. That requires a counting [`GlobalAlloc`]
//! installed in the *binary* (a library cannot install one), so the
//! `experiments` binary declares
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc;
//! ```
//!
//! and this module keeps the shared counters. When the allocator is not
//! installed (library tests, other binaries), the counters stay at zero
//! and [`peak_bytes`] honestly reports 0 — callers print `n/a` for that.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that tracks live and peak bytes.
///
/// Counter updates are `Relaxed`: they are independent tallies read only
/// between benchmark runs, never paired with other state.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System` for allocation; the counters are
// bookkeeping on the side and never influence the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let size = layout.size() as u64;
            // relaxed: independent byte tallies read between runs only.
            let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
            // relaxed: same tally; fetch_max keeps the high-water mark.
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        // relaxed: independent byte tally read between runs only.
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            let (old, new) = (layout.size() as u64, new_size as u64);
            if new >= old {
                // relaxed: independent byte tallies read between runs.
                let live = LIVE.fetch_add(new - old, Ordering::Relaxed) + (new - old);
                // relaxed: same tally; fetch_max keeps the high-water mark.
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                // relaxed: independent byte tally read between runs.
                LIVE.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Bytes currently allocated (0 unless [`CountingAlloc`] is installed).
pub fn live_bytes() -> u64 {
    // relaxed: advisory snapshot of an independent tally.
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since the last [`reset_peak`].
pub fn peak_bytes() -> u64 {
    // relaxed: advisory snapshot of an independent tally.
    PEAK.load(Ordering::Relaxed)
}

/// Restarts peak tracking from the current live footprint, so each
/// benchmark's peak measures its own allocations, not its predecessors'.
pub fn reset_peak() {
    // relaxed: both are independent tallies; callers quiesce between
    // benchmarks, so no cross-thread ordering is being established.
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counters
    // only ever see what these tests feed them directly.
    #[test]
    fn counters_track_alloc_and_dealloc() {
        let a = CountingAlloc;
        let layout = Layout::from_size_align(4096, 8).unwrap();
        reset_peak();
        let before = live_bytes();
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        assert_eq!(live_bytes(), before + 4096);
        assert!(peak_bytes() >= before + 4096);
        unsafe { a.dealloc(p, layout) };
        assert_eq!(live_bytes(), before);
        // Peak survives the free until the next reset.
        assert!(peak_bytes() >= before + 4096);
        reset_peak();
        assert_eq!(peak_bytes(), before);
    }
}
