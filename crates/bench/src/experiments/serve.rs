//! The `serve` experiment: closed-loop throughput and latency of the
//! sharded cube-serving engine.
//!
//! A cube is precomputed once from a seeded synthetic relation, then the
//! same deterministic navigation workload (same seed → same request
//! stream) is replayed against servers with varying shard and worker
//! counts. Real wall-clock throughput and latency quantiles go into the
//! table; the request stream, cube contents and per-plan counters are
//! bit-for-bit reproducible across runs.

use crate::report::{f2, Report, Table};
use crate::Ctx;
use icecube_cluster::ClusterConfig;
use icecube_core::{run_parallel, Algorithm, CubeStore, IcebergQuery};
use icecube_data::SyntheticSpec;
use icecube_serve::{run_closed_loop, CubeServer, NavigationWorkload, ShardedCube};

/// Workload seed; fixed so every run replays the identical stream.
const SEED: u64 = 0x1ceb_e265;

/// Closed-loop serving throughput while sweeping workers (at 4 shards)
/// and shards (at 4 workers).
pub fn serve(ctx: &Ctx) -> Report {
    let tuples = ctx.tuples(50_000);
    let rel = SyntheticSpec::uniform(tuples, vec![12, 10, 8, 6], 42)
        .generate()
        .expect("uniform spec is valid");
    // minsup 1 keeps every cell, so roll-up fallbacks stay exact and the
    // workload can navigate anywhere.
    let q = IcebergQuery::count_cube(rel.arity(), 1);
    let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(4))
        .expect("serve cube configuration is valid");
    let store = CubeStore::from_outcome(rel.arity(), 1, out);

    let requests = ((4000.0 * ctx.scale) as usize).max(256);
    let workload = NavigationWorkload::generate(&store, requests, SEED);

    let mut t = Table::new([
        "shards",
        "workers",
        "clients",
        "requests",
        "throughput_rps",
        "mean_us",
        "p50_us",
        "p95_us",
        "p99_us",
        "rollup_stored",
        "rollup_aggregated",
    ]);
    let us = |ns: u64| f2(ns as f64 / 1e3);
    let sweep = |shards: usize, workers: usize, clients: usize, t: &mut Table| -> f64 {
        let server = CubeServer::start(ShardedCube::new(&store, shards), workers)
            .expect("worker pool starts");
        let report = run_closed_loop(&server, &workload, clients).expect("server stays up");
        let s = &report.stats;
        t.row([
            shards.to_string(),
            workers.to_string(),
            clients.to_string(),
            report.requests.to_string(),
            f2(report.throughput),
            us(s.mean_ns),
            us(s.p50_ns),
            us(s.p95_ns),
            us(s.p99_ns),
            s.rollup_stored.to_string(),
            s.rollup_aggregated.to_string(),
        ]);
        report.throughput
    };

    // Worker sweep at a fixed sharding, then shard sweep at a fixed pool.
    let mut worker_curve = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        worker_curve.push(sweep(4, workers, 8, &mut t));
    }
    let mut shard_curve = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        shard_curve.push(sweep(shards, 4, 8, &mut t));
    }

    let mut r = Report::new(
        "serve",
        "Closed-loop serving throughput vs shard and worker count",
        t,
    );
    r.note(format!(
        "Cube: {} cells over {} cuboids from {} tuples; workload: {} requests \
         ({} leaves), seed {:#x} — identical stream for every row.",
        store.len(),
        store.cuboid_masks().len(),
        tuples,
        requests,
        workload.leaf_count(),
        SEED,
    ));
    r.note(format!(
        "Workers 1→8 at 4 shards: {} → {} req/s; shards 1→8 at 4 workers: {} → {} \
         req/s. Expect worker scaling until the 8 closed-loop clients saturate; \
         sharding mainly narrows point-lookup work per shard.",
        f2(worker_curve[0]),
        f2(worker_curve[3]),
        f2(shard_curve[0]),
        f2(shard_curve[3]),
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_experiment_rows_and_determinism() {
        let ctx = Ctx::quick();
        let r = serve(&ctx);
        assert_eq!(r.table.len(), 8, "4 worker rows + 4 shard rows");
        // Every row answered the full workload with identical plan mix.
        let requests: Vec<&str> = (0..8).map(|i| r.table.cell(i, 3)).collect();
        assert!(requests.windows(2).all(|w| w[0] == w[1]), "{requests:?}");
        let stored: Vec<&str> = (0..8).map(|i| r.table.cell(i, 9)).collect();
        assert!(stored.windows(2).all(|w| w[0] == w[1]), "{stored:?}");
    }
}
