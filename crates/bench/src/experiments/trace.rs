//! The `trace` experiment: virtual-time trace exports for the five
//! algorithms.
//!
//! Each algorithm runs once on an 8-node cluster with the trace collector
//! attached. Tracing charges no virtual time, so the makespans match the
//! untraced experiments exactly; the collector only records what already
//! happened. Three artifact families land in the output directory:
//!
//! * `trace_<alg>.json` — Chrome `trace_event` timelines, one per
//!   algorithm (load in `chrome://tracing` or Perfetto);
//! * `trace_costs.csv` — the per-node, per-phase cost breakdown of every
//!   run, keyed by algorithm;
//! * `trace_registry.csv` — the unified metrics registry holding every
//!   run's cluster statistics under `<alg>.` prefixes.
//!
//! All artifacts are derived from virtual clocks and deterministic
//! counters, so every file is bit-for-bit reproducible for a given scale
//! (CI regenerates them twice and diffs the bytes).

use crate::report::{kb, secs, Report, Table};
use crate::Ctx;
use icecube_cluster::ClusterConfig;
use icecube_core::{run_parallel_with, Algorithm, IcebergQuery, RunOptions};
use icecube_data::SyntheticSpec;
use icecube_trace::{chrome_trace_json, phase_cost_csv, EventKind, Registry, PHASE_COST_HEADER};

/// Simulated cluster size (matches the fault experiment).
const NODES: usize = 8;

/// Traced runs of the five algorithms, with exported artifacts.
pub fn trace(ctx: &Ctx) -> Report {
    let tuples = ctx.tuples(50_000);
    let rel = SyntheticSpec::uniform(tuples, vec![12, 10, 8, 6], 7)
        .generate()
        .expect("uniform spec is valid");
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let mut t = Table::new([
        "alg",
        "events",
        "task_spans",
        "depth_marks",
        "msg_events",
        "comm_kb",
        "makespan_s",
    ]);
    let mut registry = Registry::new();
    let mut costs = String::from("alg,");
    costs.push_str(PHASE_COST_HEADER);
    costs.push('\n');
    std::fs::create_dir_all(&ctx.out_dir).expect("output directory is creatable");
    for alg in Algorithm::evaluated() {
        let cfg = ClusterConfig::fast_ethernet(NODES).with_trace();
        let out = run_parallel_with(alg, &rel, &q, &cfg, &RunOptions::counting())
            .expect("experiment configurations are valid");
        let log = out.trace.as_ref().expect("tracing was enabled");
        let name = alg.to_string().to_lowercase();
        std::fs::write(
            ctx.out_dir.join(format!("trace_{name}.json")),
            chrome_trace_json(log),
        )
        .expect("trace JSON is writable");
        for line in phase_cost_csv(log).lines().skip(1) {
            costs.push_str(&name);
            costs.push(',');
            costs.push_str(line);
            costs.push('\n');
        }
        out.stats.register_into(&name, &mut registry);
        let spans = log.count_total(|e| matches!(e, EventKind::TaskStart { .. }));
        let depths = log.count_total(|e| matches!(e, EventKind::Depth { .. }));
        let msgs = log.count_total(|e| {
            matches!(
                e,
                EventKind::MsgSend { .. } | EventKind::MsgRecv { .. } | EventKind::Rpc { .. }
            )
        });
        t.row([
            alg.to_string(),
            log.total_events().to_string(),
            spans.to_string(),
            depths.to_string(),
            msgs.to_string(),
            kb(log.comm_volume_bytes()),
            secs(out.stats.makespan_ns()),
        ]);
    }
    std::fs::write(ctx.out_dir.join("trace_costs.csv"), &costs).expect("cost CSV is writable");
    std::fs::write(ctx.out_dir.join("trace_registry.csv"), registry.to_csv())
        .expect("registry CSV is writable");
    let mut r = Report::new(
        "trace",
        "Virtual-time traces: event counts and communication volume x 5 algorithms",
        t,
    );
    r.note(format!(
        "Wrote trace_<alg>.json (Chrome trace_event), trace_costs.csv and \
         trace_registry.csv ({} metrics) into {}. Tracing charges nothing: \
         every makespan equals its untraced run.",
        registry.len(),
        ctx.out_dir.display(),
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_experiment_exports_deterministic_artifacts() {
        let ctx = Ctx {
            out_dir: std::env::temp_dir().join("icecube-trace-exp"),
            ..Ctx::quick()
        };
        let r = trace(&ctx);
        assert_eq!(r.table.len(), 5);
        for i in 0..r.table.len() {
            let events: u64 = r.table.cell(i, 1).parse().unwrap();
            let spans: u64 = r.table.cell(i, 2).parse().unwrap();
            assert!(events > 0, "row {i} recorded nothing");
            assert!(spans > 0, "row {i} recorded no task spans");
        }
        let json = std::fs::read_to_string(ctx.out_dir.join("trace_pt.json")).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        let costs = std::fs::read_to_string(ctx.out_dir.join("trace_costs.csv")).unwrap();
        assert!(costs.contains("rp,0,load,"));
        let reg = std::fs::read_to_string(ctx.out_dir.join("trace_registry.csv")).unwrap();
        assert!(reg.contains("pt.makespan_ns,"));
        // Byte-identical re-export: same seed, same scale, same files.
        let again = trace(&ctx);
        assert_eq!(r.table.to_csv(), again.table.to_csv());
        assert_eq!(
            costs,
            std::fs::read_to_string(ctx.out_dir.join("trace_costs.csv")).unwrap()
        );
    }
}
