//! The `fault` experiment: robustness of the five algorithms under a
//! seeded fault plan (crashes, transient slowdowns, message drops).
//!
//! For each algorithm a fault-free baseline fixes the virtual-time
//! horizon and the reference cell count; then the same seeded
//! [`FaultPlan`] (scaled by a severity sweep) is injected and the run is
//! measured again. The `match` column asserts the healed cube has exactly
//! the baseline's cells — recovery must never change the answer, only the
//! makespan. Every column is derived from virtual clocks and counters, so
//! the emitted CSV is bit-for-bit reproducible across runs.

use crate::report::{f2, secs, Report, Table};
use crate::Ctx;
use icecube_cluster::{ClusterConfig, FaultPlan};
use icecube_core::{run_parallel_with, Algorithm, IcebergQuery, RunOptions};
use icecube_data::SyntheticSpec;

const ALGS: [Algorithm; 5] = [
    Algorithm::Rp,
    Algorithm::Bpp,
    Algorithm::Asl,
    Algorithm::Pt,
    Algorithm::Aht,
];

/// Fault-plan seed; fixed so every run injects the identical faults.
const SEED: u64 = 0x1ceb_fa17;

/// Simulated cluster size.
const NODES: usize = 8;

/// Severity sweep: 0 is the fault-free baseline; 100 is the nominal
/// seeded plan; 400 is a hostile cluster (several crashes plus heavy
/// slowdown and message loss).
const SEVERITIES: [u32; 4] = [0, 100, 200, 400];

/// Fault-rate sweep × the five algorithms on an 8-node cluster.
pub fn fault(ctx: &Ctx) -> Report {
    let tuples = ctx.tuples(100_000);
    let rel = SyntheticSpec::uniform(tuples, vec![12, 10, 8, 6], 7)
        .generate()
        .expect("uniform spec is valid");
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let mut t = Table::new([
        "alg",
        "severity",
        "crashes",
        "tasks_lost",
        "tasks_recovered",
        "rpc_retries",
        "retransmits",
        "makespan_s",
        "overhead",
        "cells",
        "match",
    ]);
    let mut all_match = true;
    let mut worst_overhead = 1.0f64;
    for alg in ALGS {
        let mut baseline_ns = 0u64;
        let mut baseline_cells = 0u64;
        for severity in SEVERITIES {
            let out = if severity == 0 {
                // The shared quiet reference (also used by the chaos
                // suite): fixes this algorithm's horizon and cell count.
                super::fault_free_baseline(alg, &rel, &q, NODES, &RunOptions::counting())
            } else {
                let plan = FaultPlan::seeded_severity(SEED, NODES, baseline_ns, severity);
                let cfg = ClusterConfig::fast_ethernet(NODES).with_faults(plan);
                run_parallel_with(alg, &rel, &q, &cfg, &RunOptions::counting())
                    .expect("seeded plans spare at least one node")
            };
            if severity == 0 {
                baseline_ns = out.stats.makespan_ns();
                baseline_cells = out.total_cells;
            }
            let exact = out.total_cells == baseline_cells;
            all_match &= exact;
            let overhead = out.stats.makespan_ns() as f64 / baseline_ns as f64;
            worst_overhead = worst_overhead.max(overhead);
            t.row([
                alg.to_string(),
                severity.to_string(),
                out.stats.total_crashes().to_string(),
                out.stats.total_tasks_lost().to_string(),
                out.stats.total_tasks_recovered().to_string(),
                out.stats.total_rpc_retries().to_string(),
                out.stats.total_retransmits().to_string(),
                secs(out.stats.makespan_ns()),
                f2(overhead),
                out.total_cells.to_string(),
                if exact { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    let mut r = Report::new(
        "fault",
        "Self-healing under seeded faults: severity sweep x 5 algorithms",
        t,
    );
    r.note(format!(
        "Fault plan seed {SEED:#x} on {NODES} nodes, severity 0/100/200/400 \
         (0 = fault-free baseline per algorithm). Cube equality under faults: {}. \
         Worst makespan overhead: {}x — crashes cost re-execution and detection \
         timeouts, never cells.",
        if all_match { "all exact" } else { "BROKEN" },
        f2(worst_overhead),
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_experiment_heals_exactly_and_is_deterministic() {
        let ctx = Ctx::quick();
        let r = fault(&ctx);
        assert_eq!(r.table.len(), ALGS.len() * SEVERITIES.len());
        for i in 0..r.table.len() {
            assert_eq!(r.table.cell(i, 10), "yes", "row {i} lost cells");
        }
        // Non-vacuity: the harsher severities actually injected faults.
        let crashes: u64 = (0..r.table.len())
            .map(|i| r.table.cell(i, 2).parse::<u64>().unwrap())
            .sum();
        let recovered: u64 = (0..r.table.len())
            .map(|i| r.table.cell(i, 4).parse::<u64>().unwrap())
            .sum();
        assert!(crashes > 0, "no crashes injected");
        assert!(recovered > 0, "no tasks recovered");
        // Same seed, same scale: the whole report (and hence the CSV
        // bytes) must be identical across runs.
        let again = fault(&ctx);
        assert_eq!(r.table.to_csv(), again.table.to_csv());
    }
}
