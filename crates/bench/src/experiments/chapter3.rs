//! Chapter 1/3 artifacts: the algorithm feature table and the writing-
//! strategy I/O comparison.

use super::measure;
use crate::report::{f2, mb, secs, Report, Table};
use crate::Ctx;
use icecube_core::Algorithm;
use icecube_data::presets;

/// Table 1.1 — key features of the algorithms.
pub fn table1_1() -> Report {
    let mut t = Table::new(["Algorithm", "Writing", "LoadBalance", "Cuboids", "Data"]);
    for alg in [Algorithm::Rp, Algorithm::Bpp, Algorithm::Asl, Algorithm::Pt] {
        let f = alg.features();
        t.row([
            f.name,
            f.writing,
            f.load_balance,
            f.traversal,
            f.decomposition,
        ]);
    }
    let mut r = Report::new("table1_1", "Key features of the algorithms (Table 1.1)", t);
    r.note("Static reproduction of the paper's Table 1.1.".to_string());
    r
}

/// Figure 3.6 — I/O comparison between BPP (breadth-first writing) and RP
/// (depth-first writing) on 9 dimensions, 176,631 tuples, minsup 2,
/// varying the number of processors.
pub fn fig3_6(ctx: &Ctx) -> Report {
    let mut spec = presets::baseline();
    spec.tuples = ctx.tuples(presets::BASELINE_TUPLES);
    let rel = spec.generate().expect("baseline preset is valid");
    let mut t = Table::new([
        "procs",
        "rp_io_s",
        "bpp_io_s",
        "ratio",
        "rp_switches",
        "bpp_switches",
        "output_mb",
    ]);
    let mut ratios = Vec::new();
    for procs in [2usize, 4, 8, 16] {
        let rp = measure(Algorithm::Rp, &rel, presets::BASELINE_MINSUP, procs);
        let bpp = measure(Algorithm::Bpp, &rel, presets::BASELINE_MINSUP, procs);
        let (rio, bio) = (rp.stats.total_io_ns(), bpp.stats.total_io_ns());
        let ratio = rio as f64 / bio.max(1) as f64;
        ratios.push(ratio);
        t.row([
            procs.to_string(),
            secs(rio),
            secs(bio),
            f2(ratio),
            rp.stats
                .nodes()
                .iter()
                .map(|s| s.file_switches)
                .sum::<u64>()
                .to_string(),
            bpp.stats
                .nodes()
                .iter()
                .map(|s| s.file_switches)
                .sum::<u64>()
                .to_string(),
            mb(rp.stats.total_bytes_written()),
        ]);
    }
    let mut r = Report::new(
        "fig3_6",
        "I/O: depth-first (RP) vs breadth-first (BPP) writing (Figure 3.6)",
        t,
    );
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    r.note(format!(
        "Paper: RP's total I/O time was more than 5x BPP's on the baseline. \
         Measured I/O ratio ranges {:.1}x–{:.1}x — shape {}.",
        min,
        ratios.iter().cloned().fold(0.0, f64::max),
        if min > 2.0 {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    ));
    r
}
