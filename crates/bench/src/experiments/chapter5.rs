//! Chapter 5: online aggregation (selective materialization, POL).

use crate::report::{f2, secs, Report, Table};
use crate::Ctx;
use icecube_cluster::{ClusterConfig, SimCluster};
use icecube_core::cell::CellBuf;
use icecube_core::{run_parallel_with, Algorithm, IcebergQuery, RunOptions};
use icecube_data::presets;
use icecube_lattice::CuboidMask;
use icecube_online::{run_pol, PolQuery, SelectiveMaterialization, TaskArray};

/// Section 5.1 — selective materialization: recomputing the whole iceberg
/// cube vs precomputing only the leaf cuboid (at support 1) and answering
/// online by roll-up.
pub fn sec5_1(ctx: &Ctx) -> Report {
    let mut spec = presets::baseline();
    spec.tuples = ctx.tuples(presets::BASELINE_TUPLES);
    let rel = spec.generate().expect("baseline preset is valid");

    // Plan 1: recompute the entire cube with ASL at the query's support.
    let q = IcebergQuery::count_cube(rel.arity(), presets::BASELINE_MINSUP);
    let full = run_parallel_with(
        Algorithm::Asl,
        &rel,
        &q,
        &ClusterConfig::fast_ethernet(8),
        &RunOptions::counting(),
    )
    .expect("baseline configuration is valid");
    let recompute_s = full.stats.makespan_ns();

    // Plan 2: precompute the leaves at support 1; answer online by roll-up.
    let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
    let m = SelectiveMaterialization::precompute(&rel, &mut cluster.nodes[0], 7)
        .expect("non-empty input");
    let precompute_s = cluster.nodes[0].clock_ns();
    let t0 = cluster.nodes[0].clock_ns();
    let mut sink = CellBuf::counting();
    // An online drill-down over the first five dimensions.
    m.query(
        CuboidMask::from_dims(&[0, 1, 2, 3, 4]),
        presets::BASELINE_MINSUP,
        &mut cluster.nodes[0],
        &mut sink,
    )
    .expect("in-range group-by");
    let online_s = cluster.nodes[0].clock_ns() - t0;

    let mut t = Table::new(["plan", "stage", "seconds"]);
    t.row(["recompute (ASL, full cube)", "query", &secs(recompute_s)]);
    t.row([
        "materialize leaves (minsup 1)",
        "precompute",
        &secs(precompute_s),
    ]);
    t.row([
        "materialize leaves (minsup 1)",
        "online query",
        &secs(online_s),
    ]);
    let mut r = Report::new(
        "sec5_1",
        "Selective materialization vs recompute (Section 5.1)",
        t,
    );
    r.note(format!(
        "Paper: full ASL recompute ~60s; leaves-only precompute ~50s; online stage returns \
         almost immediately. Measured: recompute {}s, precompute {}s, online {}s — online \
         ≪ recompute: {}.",
        secs(recompute_s),
        secs(precompute_s),
        secs(online_s),
        if online_s * 10 < recompute_s {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    ));
    r
}

/// Table 5.1 — the n×n task array for 4 processors.
pub fn table5_1() -> Report {
    let array = TaskArray::new(4);
    let mut t = Table::new(["owner", "processing order (source nodes)"]);
    for j in 0..4 {
        let order: Vec<String> = array
            .order_for(j)
            .iter()
            .map(|i| format!("Chunk_{}{}", j + 1, i + 1))
            .collect();
        t.row([format!("P{}", j + 1), order.join(" → ")]);
    }
    let mut r = Report::new("table5_1", "Task array for 4 processors (Table 5.1)", t);
    r.note(
        "Each processor starts with its local chunk and wraps, staggering remote fetches \
         (Section 5.3.2)."
            .to_string(),
    );
    r
}

fn online_query(rel_arity: usize) -> PolQuery {
    // The 12-dimensional group-by of the paper's POL experiments (minsup 2,
    // 8000-tuple buffers); the dimensions are chosen so the skip list ends
    // up near the paper's 924,585 nodes.
    let dims: Vec<usize> = presets::pol_query_dims()
        .into_iter()
        .filter(|&d| d < rel_arity)
        .collect();
    let mut q = PolQuery::new(CuboidMask::from_dims(&dims), 2);
    q.snapshot_every = 32;
    q
}

/// Figure 5.3 — POL's scalability with the number of processors on the
/// three clusters (fast/Ethernet, slow/Ethernet, slow/Myrinet).
pub fn fig5_3(ctx: &Ctx) -> Report {
    let mut spec = presets::online();
    spec.tuples = ctx.tuples(presets::ONLINE_TUPLES);
    let rel = spec.generate().expect("online preset is valid");
    let query = online_query(rel.arity());
    let procs = [1usize, 2, 4, 8];
    let mut t = Table::new([
        "procs",
        "cluster1_fast_eth_s",
        "cluster2_slow_eth_s",
        "cluster3_slow_myrinet_s",
    ]);
    let mut last: Vec<f64> = Vec::new();
    let mut first: Vec<f64> = Vec::new();
    let mut nodes_reported = 0u64;
    for &p in &procs {
        let configs = [
            ClusterConfig::fast_ethernet(p),
            ClusterConfig::slow_ethernet(p),
            ClusterConfig::slow_myrinet(p),
        ];
        let mut row = vec![p.to_string()];
        let mut walls = Vec::new();
        for cfg in &configs {
            let out = run_pol(&rel, &query, cfg).expect("valid POL configuration");
            walls.push(out.stats.makespan_ns() as f64 / 1e9);
            row.push(f2(out.stats.makespan_ns() as f64 / 1e9));
            nodes_reported = out.total_list_nodes;
        }
        if p == 1 {
            first = walls.clone();
        }
        last = walls;
        t.row(row);
    }
    let mut r = Report::new(
        "fig5_3",
        "POL's scalability with the number of processors (Figure 5.3)",
        t,
    );
    r.note(format!(
        "Skip list built with {nodes_reported} nodes (paper: 924,585 for the full-size run)."
    ));
    let sp = |i: usize| first[i] / last[i];
    r.note(format!(
        "Paper: speedup is better on the slow clusters (computation dominates \
         communication) and Myrinet beats Ethernet at the same CPUs. Measured 8-proc \
         speedups — fast-eth {:.2}x, slow-eth {:.2}x, slow-myrinet {:.2}x; Myrinet ≤ \
         Ethernet wall time: {}.",
        sp(0),
        sp(1),
        sp(2),
        if last[2] <= last[1] {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    ));
    r
}

/// Figure 5.4 — POL's scalability with the buffer size.
pub fn fig5_4(ctx: &Ctx) -> Report {
    let mut spec = presets::online();
    spec.tuples = ctx.tuples(presets::ONLINE_TUPLES);
    let rel = spec.generate().expect("online preset is valid");
    let buffers = [1000usize, 2000, 4000, 8000, 16000, 32000];
    let mut t = Table::new(["buffer_tuples", "wall_s", "steps", "barriers"]);
    let mut walls = Vec::new();
    for &b in &buffers {
        let mut query = online_query(rel.arity());
        query.buffer_tuples = (b as f64 * ctx.scale).max(64.0) as usize;
        let out = run_pol(&rel, &query, &ClusterConfig::slow_myrinet(8))
            .expect("valid POL configuration");
        let steps = out.snapshots.last().map(|s| s.step).unwrap_or(0);
        walls.push(out.stats.makespan_ns() as f64 / 1e9);
        t.row([
            query.buffer_tuples.to_string(),
            f2(out.stats.makespan_ns() as f64 / 1e9),
            steps.to_string(),
            out.stats.nodes()[0].barriers.to_string(),
        ]);
    }
    let mut r = Report::new(
        "fig5_4",
        "POL's scalability with buffer size (Figure 5.4)",
        t,
    );
    r.note(format!(
        "Paper: larger buffers mean fewer steps, fewer synchronizations, better times. \
         Measured: {:.2}s at the smallest buffer vs {:.2}s at the largest — monotone \
         improvement {}.",
        walls[0],
        walls[walls.len() - 1],
        if walls[0] >= walls[walls.len() - 1] {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    ));
    r
}
