//! `bench` — the repo's wall-clock benchmark baseline.
//!
//! Every other experiment reports *virtual* time from the simulated
//! cluster; this one reports real host time, so kernel-level changes
//! (like the zero-clone arena rewrite) have a recorded before/after.
//! It times the two sequential BUC kernels plus the five evaluated
//! cluster algorithms on the baseline preset, and writes
//! `BENCH_kernel.json` next to the CSVs:
//!
//! ```json
//! {
//!   "schema": "icecube-bench-kernel/v1",
//!   "scale": 1.0,
//!   "tuples": 176000,
//!   "samples": 5,
//!   "results": [
//!     { "name": "kernel_bpp_buc", "median_ns": 994000000,
//!       "tuples_per_sec": 177062.1, "peak_bytes": 12345678 }
//!   ]
//! }
//! ```
//!
//! Kernels are timed into counting sinks (the same `RunOptions::counting`
//! the virtual-time experiments use), so the numbers measure cube
//! computation, not cell retention. `peak_bytes` is the high-water mark
//! of the process allocator during the benchmark's samples — real only
//! when the `experiments` binary's counting allocator is installed; other
//! hosts (unit tests) record 0 and the table prints `n/a`.

use super::measure;
use crate::report::{Report, Table};
use crate::{alloc_track, Ctx};
use criterion::sample;
use icecube_cluster::{ClusterConfig, SimCluster};
use icecube_core::buc::{bpp_buc, buc_depth_first};
use icecube_core::cell::CellBuf;
use icecube_core::Algorithm;
use icecube_data::{presets, Relation};
use icecube_lattice::TreeTask;
use std::time::Duration;

/// A sequential BUC kernel entry point (the signature shared by
/// `buc_depth_first` and `bpp_buc`).
type SeqKernel = fn(&Relation, u64, TreeTask, &mut icecube_cluster::SimNode, &mut CellBuf);

/// One benchmark's recorded result.
struct BenchResult {
    name: &'static str,
    median: Duration,
    tuples_per_sec: f64,
    peak_bytes: u64,
}

fn run_bench(
    name: &'static str,
    tuples: usize,
    samples: usize,
    mut f: impl FnMut(),
) -> BenchResult {
    alloc_track::reset_peak();
    let s = sample(samples, &mut f);
    let median = s.median();
    let secs = median.as_secs_f64();
    BenchResult {
        name,
        median,
        tuples_per_sec: if secs > 0.0 {
            tuples as f64 / secs
        } else {
            0.0
        },
        peak_bytes: alloc_track::peak_bytes(),
    }
}

/// The wall-clock benchmark baseline (`BENCH_kernel.json`).
pub fn bench(ctx: &Ctx) -> Report {
    let mut spec = presets::baseline();
    spec.tuples = ctx.tuples(presets::BASELINE_TUPLES);
    let rel = spec.generate().expect("baseline preset is valid");
    let n = rel.len();
    let minsup = presets::BASELINE_MINSUP;
    let samples = if ctx.smoke { 1 } else { 5 };

    let mut results = Vec::new();
    let seq_kernels: [(&'static str, SeqKernel); 2] =
        [("kernel_buc", buc_depth_first), ("kernel_bpp_buc", bpp_buc)];
    for (name, kernel) in seq_kernels {
        results.push(run_bench(name, n, samples, || {
            let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
            let mut sink = CellBuf::counting();
            kernel(
                &rel,
                minsup,
                TreeTask::whole_lattice(rel.arity()),
                &mut cluster.nodes[0],
                &mut sink,
            );
            std::hint::black_box(sink.count);
        }));
    }
    for alg in [
        Algorithm::Rp,
        Algorithm::Bpp,
        Algorithm::Asl,
        Algorithm::Pt,
        Algorithm::Aht,
    ] {
        let name: &'static str = match alg {
            Algorithm::Rp => "cluster_rp",
            Algorithm::Bpp => "cluster_bpp",
            Algorithm::Asl => "cluster_asl",
            Algorithm::Pt => "cluster_pt",
            Algorithm::Aht => "cluster_aht",
            Algorithm::HashTree => unreachable!("not benchmarked"),
        };
        results.push(run_bench(name, n, samples, || {
            std::hint::black_box(measure(alg, &rel, minsup, 8).total_cells);
        }));
    }

    let mut t = Table::new(["name", "median_ms", "tuples_per_sec", "peak_mb"]);
    for r in &results {
        t.row([
            r.name.to_string(),
            format!("{:.1}", r.median.as_secs_f64() * 1e3),
            format!("{:.0}", r.tuples_per_sec),
            if r.peak_bytes > 0 {
                format!("{:.1}", r.peak_bytes as f64 / 1e6)
            } else {
                "n/a".to_string()
            },
        ]);
    }
    let mut report = Report::new("bench", "Wall-clock kernel baseline", t);
    report.note(format!(
        "{n} tuples, minsup {minsup}, {samples} sample(s) per benchmark; \
         times are host wall-clock, not virtual."
    ));
    if results.iter().all(|r| r.peak_bytes == 0) {
        report.note(
            "peak_mb is n/a: the counting allocator is only installed in \
             the `experiments` binary."
                .to_string(),
        );
    }

    match write_json(ctx, &rel, samples, &results) {
        Ok(path) => report.note(format!("json: {}", path.display())),
        Err(e) => report.note(format!("json write failed: {e}")),
    }
    report
}

fn write_json(
    ctx: &Ctx,
    rel: &Relation,
    samples: usize,
    results: &[BenchResult],
) -> std::io::Result<std::path::PathBuf> {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"icecube-bench-kernel/v1\",\n");
    out.push_str(&format!("  \"scale\": {},\n", ctx.scale));
    out.push_str(&format!("  \"tuples\": {},\n", rel.len()));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"median_ns\": {}, \
             \"tuples_per_sec\": {:.1}, \"peak_bytes\": {} }}{}\n",
            r.name,
            r.median.as_nanos(),
            r.tuples_per_sec,
            r.peak_bytes,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::create_dir_all(&ctx.out_dir)?;
    let path = ctx.out_dir.join("BENCH_kernel.json");
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_writes_schema_stable_json() {
        let ctx = Ctx {
            out_dir: std::env::temp_dir().join("icecube-bench-json"),
            ..Ctx::quick()
        };
        let r = bench(&ctx);
        assert_eq!(r.table.len(), 7, "two kernels + five cluster algorithms");
        let json = std::fs::read_to_string(ctx.out_dir.join("BENCH_kernel.json")).unwrap();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        for key in ["schema", "scale", "tuples", "samples", "results"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
        }
        for name in [
            "kernel_buc",
            "kernel_bpp_buc",
            "cluster_rp",
            "cluster_bpp",
            "cluster_asl",
            "cluster_pt",
            "cluster_aht",
        ] {
            assert!(json.contains(name), "missing benchmark {name}");
        }
        for field in ["median_ns", "tuples_per_sec", "peak_bytes"] {
            assert!(json.contains(field), "missing field {field}");
        }
    }
}
