//! `bench` — the repo's wall-clock benchmark baseline.
//!
//! Every other experiment reports *virtual* time from the simulated
//! cluster; this one reports real host time, so kernel-level changes
//! (like the zero-clone arena rewrite) have a recorded before/after.
//! It times the two sequential BUC kernels, the five evaluated cluster
//! algorithms on the simulated backend, and the same five on the native
//! thread-pool executor, and writes `BENCH_kernel.json` next to the
//! CSVs:
//!
//! ```json
//! {
//!   "schema": "icecube-bench-kernel/v2",
//!   "scale": 1.0,
//!   "tuples": 176000,
//!   "samples": 5,
//!   "results": [
//!     { "name": "kernel_bpp_buc", "backend": "host", "workers": 1,
//!       "median_ns": 994000000, "tuples_per_sec": 177062.1,
//!       "peak_bytes": 12345678 },
//!     { "name": "native_bpp", "backend": "native", "workers": 8,
//!       "median_ns": 241000000, "tuples_per_sec": 730000.0,
//!       "peak_bytes": 23456789, "speedup_vs_sim": 4.1 }
//!   ]
//! }
//! ```
//!
//! Every row carries `backend` ("host" for the sequential kernels, "sim"
//! or "native" for the cluster algorithms) and `workers`; native rows add
//! `speedup_vs_sim` — the ratio of the matching simulated run's host
//! wall-clock median to theirs — when both backends ran (`--backend
//! both`, the default). The simulated rows pay for the cost model and
//! single-threaded scheduling; the native rows run the identical task
//! decomposition on real threads, so on a host with real cores to give
//! the ratio approaches the parallelism. On a single-core host (the
//! committed baseline's recording container) the ratio instead
//! measures scheduler overhead under time-sharing — interpret it
//! against the host's `nproc`, never across machines.
//!
//! Kernels are timed into counting sinks (the same `RunOptions::counting`
//! the virtual-time experiments use), so the numbers measure cube
//! computation, not cell retention. `peak_bytes` is the high-water mark
//! of the process allocator during the benchmark's samples — real only
//! when the `experiments` binary's counting allocator is installed; other
//! hosts (unit tests) record 0 and the table prints `n/a`.

use super::measure;
use crate::report::{Report, Table};
use crate::{alloc_track, Ctx};
use criterion::sample;
use icecube_cluster::{ClusterConfig, SimCluster};
use icecube_core::buc::{bpp_buc, buc_depth_first};
use icecube_core::cell::CellBuf;
use icecube_core::{run_parallel_exec, Algorithm, IcebergQuery, RunOptions};
use icecube_data::{presets, Relation};
use icecube_exec::NativeExecutor;
use icecube_lattice::TreeTask;
use std::time::Duration;

/// Worker count for the cluster-algorithm rows, on both backends — the
/// paper's evaluation uses an 8-node cluster.
const BENCH_WORKERS: usize = 8;

/// A sequential BUC kernel entry point (the signature shared by
/// `buc_depth_first` and `bpp_buc`).
type SeqKernel = fn(&Relation, u64, TreeTask, &mut icecube_cluster::SimNode, &mut CellBuf);

/// One benchmark's recorded result.
struct BenchResult {
    name: String,
    backend: &'static str,
    workers: usize,
    median: Duration,
    tuples_per_sec: f64,
    peak_bytes: u64,
    /// Simulated median / native median, on native rows when the
    /// matching sim row also ran this invocation.
    speedup_vs_sim: Option<f64>,
}

fn run_bench(
    name: String,
    backend: &'static str,
    workers: usize,
    tuples: usize,
    samples: usize,
    mut f: impl FnMut(),
) -> BenchResult {
    alloc_track::reset_peak();
    let s = sample(samples, &mut f);
    let median = s.median();
    let secs = median.as_secs_f64();
    BenchResult {
        name,
        backend,
        workers,
        median,
        tuples_per_sec: if secs > 0.0 {
            tuples as f64 / secs
        } else {
            0.0
        },
        peak_bytes: alloc_track::peak_bytes(),
        speedup_vs_sim: None,
    }
}

/// The five evaluated algorithms with their row-name stems.
const CLUSTER_ALGOS: [(Algorithm, &str); 5] = [
    (Algorithm::Rp, "rp"),
    (Algorithm::Bpp, "bpp"),
    (Algorithm::Asl, "asl"),
    (Algorithm::Pt, "pt"),
    (Algorithm::Aht, "aht"),
];

/// The wall-clock benchmark baseline (`BENCH_kernel.json`).
pub fn bench(ctx: &Ctx) -> Report {
    let mut spec = presets::baseline();
    spec.tuples = ctx.tuples(presets::BASELINE_TUPLES);
    let rel = spec.generate().expect("baseline preset is valid");
    let n = rel.len();
    let minsup = presets::BASELINE_MINSUP;
    let samples = if ctx.smoke { 1 } else { 5 };

    let mut results = Vec::new();
    let seq_kernels: [(&'static str, SeqKernel); 2] =
        [("kernel_buc", buc_depth_first), ("kernel_bpp_buc", bpp_buc)];
    for (name, kernel) in seq_kernels {
        results.push(run_bench(name.to_string(), "host", 1, n, samples, || {
            let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
            let mut sink = CellBuf::counting();
            kernel(
                &rel,
                minsup,
                TreeTask::whole_lattice(rel.arity()),
                &mut cluster.nodes[0],
                &mut sink,
            );
            std::hint::black_box(sink.count);
        }));
    }
    if ctx.backend.runs_sim() {
        for (alg, stem) in CLUSTER_ALGOS {
            results.push(run_bench(
                format!("cluster_{stem}"),
                "sim",
                BENCH_WORKERS,
                n,
                samples,
                || {
                    std::hint::black_box(measure(alg, &rel, minsup, BENCH_WORKERS).total_cells);
                },
            ));
        }
    }
    if ctx.backend.runs_native() {
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        let opts = RunOptions::counting();
        for (alg, stem) in CLUSTER_ALGOS {
            let mut r = run_bench(
                format!("native_{stem}"),
                "native",
                BENCH_WORKERS,
                n,
                samples,
                || {
                    let mut exec = NativeExecutor::new(BENCH_WORKERS);
                    let out = run_parallel_exec(&mut exec, alg, &rel, &q, &opts)
                        .expect("benchmark configurations are valid");
                    std::hint::black_box(out.total_cells);
                },
            );
            let sim_name = format!("cluster_{stem}");
            r.speedup_vs_sim = results
                .iter()
                .find(|s| s.name == sim_name)
                .map(|s| s.median.as_secs_f64() / r.median.as_secs_f64().max(1e-12));
            results.push(r);
        }
    }

    let mut t = Table::new([
        "name",
        "backend",
        "workers",
        "median_ms",
        "tuples_per_sec",
        "peak_mb",
        "speedup_vs_sim",
    ]);
    for r in &results {
        t.row([
            r.name.clone(),
            r.backend.to_string(),
            r.workers.to_string(),
            format!("{:.1}", r.median.as_secs_f64() * 1e3),
            format!("{:.0}", r.tuples_per_sec),
            if r.peak_bytes > 0 {
                format!("{:.1}", r.peak_bytes as f64 / 1e6)
            } else {
                "n/a".to_string()
            },
            match r.speedup_vs_sim {
                Some(s) => format!("{s:.2}x"),
                None => "-".to_string(),
            },
        ]);
    }
    let mut report = Report::new("bench", "Wall-clock kernel baseline", t);
    report.note(format!(
        "{n} tuples, minsup {minsup}, {samples} sample(s) per benchmark; \
         times are host wall-clock, not virtual."
    ));
    if results.iter().all(|r| r.peak_bytes == 0) {
        report.note(
            "peak_mb is n/a: the counting allocator is only installed in \
             the `experiments` binary."
                .to_string(),
        );
    }

    match write_json(ctx, &rel, samples, &results) {
        Ok(path) => report.note(format!("json: {}", path.display())),
        Err(e) => report.note(format!("json write failed: {e}")),
    }
    report
}

fn write_json(
    ctx: &Ctx,
    rel: &Relation,
    samples: usize,
    results: &[BenchResult],
) -> std::io::Result<std::path::PathBuf> {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"icecube-bench-kernel/v2\",\n");
    out.push_str(&format!("  \"scale\": {},\n", ctx.scale));
    out.push_str(&format!("  \"tuples\": {},\n", rel.len()));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = match r.speedup_vs_sim {
            Some(s) => format!(", \"speedup_vs_sim\": {s:.2}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"backend\": \"{}\", \"workers\": {}, \
             \"median_ns\": {}, \"tuples_per_sec\": {:.1}, \"peak_bytes\": {}{} }}{}\n",
            r.name,
            r.backend,
            r.workers,
            r.median.as_nanos(),
            r.tuples_per_sec,
            r.peak_bytes,
            speedup,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::create_dir_all(&ctx.out_dir)?;
    let path = ctx.out_dir.join("BENCH_kernel.json");
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackendSel;

    #[test]
    fn bench_writes_schema_stable_json() {
        let ctx = Ctx {
            out_dir: std::env::temp_dir().join("icecube-bench-json"),
            ..Ctx::quick()
        };
        let r = bench(&ctx);
        assert_eq!(
            r.table.len(),
            12,
            "two kernels + five sim + five native rows"
        );
        let json = std::fs::read_to_string(ctx.out_dir.join("BENCH_kernel.json")).unwrap();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("icecube-bench-kernel/v2"));
        for key in ["schema", "scale", "tuples", "samples", "results"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
        }
        for name in [
            "kernel_buc",
            "kernel_bpp_buc",
            "cluster_rp",
            "cluster_bpp",
            "cluster_asl",
            "cluster_pt",
            "cluster_aht",
            "native_rp",
            "native_bpp",
            "native_asl",
            "native_pt",
            "native_aht",
        ] {
            assert!(json.contains(name), "missing benchmark {name}");
        }
        for field in [
            "backend",
            "workers",
            "median_ns",
            "tuples_per_sec",
            "peak_bytes",
            "speedup_vs_sim",
        ] {
            assert!(json.contains(field), "missing field {field}");
        }
        // `backend` appears on every row.
        assert_eq!(json.matches("\"backend\"").count(), 12);
    }

    #[test]
    fn backend_selection_restricts_rows() {
        let ctx = Ctx {
            out_dir: std::env::temp_dir().join("icecube-bench-json-sim"),
            backend: BackendSel::Sim,
            ..Ctx::quick()
        };
        let r = bench(&ctx);
        assert_eq!(r.table.len(), 7, "two kernels + five sim rows");
        let json = std::fs::read_to_string(ctx.out_dir.join("BENCH_kernel.json")).unwrap();
        assert!(!json.contains("native_"), "sim-only run has native rows");
        assert!(!json.contains("speedup_vs_sim"));

        let ctx = Ctx {
            out_dir: std::env::temp_dir().join("icecube-bench-json-native"),
            backend: BackendSel::Native,
            ..Ctx::quick()
        };
        let r = bench(&ctx);
        assert_eq!(r.table.len(), 7, "two kernels + five native rows");
        let json = std::fs::read_to_string(ctx.out_dir.join("BENCH_kernel.json")).unwrap();
        assert!(!json.contains("cluster_"), "native-only run has sim rows");
        // Without sim medians there is nothing to compare against.
        assert!(!json.contains("speedup_vs_sim"));
    }
}
