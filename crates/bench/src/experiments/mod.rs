//! One module per evaluation chapter; `run_by_id` dispatches on the
//! experiment identifiers used throughout `DESIGN.md` and `EXPERIMENTS.md`.

pub mod ablations;
pub mod bench;
pub mod chapter3;
pub mod chapter4;
pub mod chapter5;
pub mod fault;
pub mod ingest;
pub mod progressive;
pub mod serve;
pub mod trace;

use crate::report::Report;
use crate::Ctx;
use icecube_cluster::ClusterConfig;
use icecube_core::{run_parallel_with, Algorithm, IcebergQuery, RunOptions, RunOutcome};
use icecube_data::Relation;

/// Every experiment identifier, in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "table1_1",
        "fig3_6",
        "fig4_1",
        "fig4_2",
        "fig4_3",
        "fig4_4",
        "fig4_5",
        "fig4_6",
        "fig4_7",
        "sec5_1",
        "table5_1",
        "fig5_3",
        "fig5_4",
        "serve",
        "fault",
        "ingest",
        "progressive",
        "trace",
        "ablation_granularity",
        "ablation_affinity",
        "ablation_writing",
        "ablation_pol",
        "ablation_sequential",
        "ablation_improvements",
        "bench",
    ]
}

/// Runs one experiment by identifier.
pub fn run_by_id(id: &str, ctx: &Ctx) -> Option<Report> {
    Some(match id {
        "table1_1" => chapter3::table1_1(),
        "fig3_6" => chapter3::fig3_6(ctx),
        "fig4_1" => chapter4::fig4_1(ctx),
        "fig4_2" => chapter4::fig4_2(ctx),
        "fig4_3" => chapter4::fig4_3(ctx),
        "fig4_4" => chapter4::fig4_4(ctx),
        "fig4_5" => chapter4::fig4_5(ctx),
        "fig4_6" => chapter4::fig4_6(ctx),
        "fig4_7" => chapter4::fig4_7(),
        "sec5_1" => chapter5::sec5_1(ctx),
        "table5_1" => chapter5::table5_1(),
        "fig5_3" => chapter5::fig5_3(ctx),
        "fig5_4" => chapter5::fig5_4(ctx),
        "serve" => serve::serve(ctx),
        "fault" => fault::fault(ctx),
        "ingest" => ingest::ingest(ctx),
        "progressive" => progressive::progressive(ctx),
        "trace" => trace::trace(ctx),
        "ablation_granularity" => ablations::granularity(ctx),
        "ablation_affinity" => ablations::affinity(ctx),
        "ablation_writing" => ablations::writing(ctx),
        "ablation_pol" => ablations::pol_stealing(ctx),
        "ablation_sequential" => ablations::sequential(ctx),
        "ablation_improvements" => ablations::improvements(ctx),
        "bench" => bench::bench(ctx),
        _ => return None,
    })
}

/// Runs `alg` over `rel` on an `n`-node fast-Ethernet cluster in counting
/// mode (the experiments never retain the millions of cells).
pub(crate) fn measure(alg: Algorithm, rel: &Relation, minsup: u64, nodes: usize) -> RunOutcome {
    measure_opts(alg, rel, minsup, nodes, &RunOptions::counting())
}

pub(crate) fn measure_opts(
    alg: Algorithm,
    rel: &Relation,
    minsup: u64,
    nodes: usize,
    opts: &RunOptions,
) -> RunOutcome {
    let q = IcebergQuery::count_cube(rel.arity(), minsup);
    run_parallel_with(alg, rel, &q, &ClusterConfig::fast_ethernet(nodes), opts)
        .expect("experiment configurations are valid")
}

/// Like [`measure`], but with the virtual-time trace collector attached:
/// the returned outcome carries `trace: Some(..)` at identical virtual
/// cost (tracing charges nothing), so timings stay comparable with the
/// untraced experiments.
pub(crate) fn measure_traced(
    alg: Algorithm,
    rel: &Relation,
    minsup: u64,
    nodes: usize,
) -> RunOutcome {
    let q = IcebergQuery::count_cube(rel.arity(), minsup);
    let cfg = ClusterConfig::fast_ethernet(nodes).with_trace();
    run_parallel_with(alg, rel, &q, &cfg, &RunOptions::counting())
        .expect("experiment configurations are valid")
}

/// Runs `alg` once with **no faults** on an `n`-node fast-Ethernet
/// cluster — the quiet reference both the `fault` experiment and the
/// chaos regression suite measure faulted runs against: its makespan
/// fixes the fault plan's virtual-time horizon, and its cells and counts
/// are exactly what a healed run must reproduce.
pub fn fault_free_baseline(
    alg: Algorithm,
    rel: &Relation,
    query: &IcebergQuery,
    nodes: usize,
    opts: &RunOptions,
) -> RunOutcome {
    run_parallel_with(alg, rel, query, &ClusterConfig::fast_ethernet(nodes), opts)
        .expect("fault-free baseline configurations are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every experiment runs end to end at test scale and produces a
    /// non-empty table. This is the harness's own integration test; the
    /// full-scale shapes are asserted inside each experiment's notes.
    #[test]
    fn every_experiment_runs_at_quick_scale() {
        let ctx = Ctx::quick();
        for id in all_ids() {
            let report = run_by_id(id, &ctx).unwrap_or_else(|| panic!("unknown id {id}"));
            assert!(!report.table.is_empty(), "{id} produced no rows");
            assert!(!report.render().is_empty());
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("fig9_9", &Ctx::quick()).is_none());
    }
}
