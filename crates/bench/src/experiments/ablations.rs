//! Ablations of the design decisions `DESIGN.md` §5 calls out.

use super::measure_opts;
use crate::report::{f2, secs, Report, Table};
use crate::Ctx;
use icecube_cluster::ClusterConfig;
use icecube_core::aht::AhtHash;
use icecube_core::{run_sequential, Algorithm, IcebergQuery, RunOptions, SeqAlgorithm};
use icecube_data::presets;
use icecube_lattice::CuboidMask;
use icecube_online::{run_pol, PolQuery};

/// PT's task-granularity parameter: binary division stops at
/// `ratio × processors` tasks. The paper settles on 32 as the balance
/// point between load balancing (fine tasks) and pruning (coarse tasks).
pub fn granularity(ctx: &Ctx) -> Report {
    let mut spec = presets::baseline();
    spec.tuples = ctx.tuples(presets::BASELINE_TUPLES);
    let rel = spec.generate().expect("baseline preset is valid");
    let mut t = Table::new(["ratio", "tasks", "wall_s", "imbalance"]);
    let mut walls = Vec::new();
    for ratio in [1usize, 2, 4, 8, 16, 32, 64] {
        let opts = RunOptions {
            pt_task_ratio: ratio,
            ..RunOptions::counting()
        };
        let out = measure_opts(Algorithm::Pt, &rel, presets::BASELINE_MINSUP, 8, &opts);
        walls.push(out.stats.makespan_ns());
        t.row([
            ratio.to_string(),
            (ratio * 8).to_string(),
            secs(out.stats.makespan_ns()),
            f2(out.stats.imbalance()),
        ]);
    }
    let mut r = Report::new(
        "ablation_granularity",
        "PT task granularity: ratio of tasks to processors (Section 3.4)",
        t,
    );
    r.note(format!(
        "The paper: higher ratio improves balance but limits per-task pruning; it uses 32n. \
         Measured wall at ratio 1: {}s, at 32: {}s.",
        secs(walls[0]),
        secs(walls[5]),
    ));
    r
}

/// Affinity scheduling on/off for ASL and PT: what sort-sharing buys.
pub fn affinity(ctx: &Ctx) -> Report {
    let mut spec = presets::baseline();
    spec.tuples = ctx.tuples(presets::BASELINE_TUPLES);
    let rel = spec.generate().expect("baseline preset is valid");
    let mut t = Table::new(["algorithm", "affinity", "wall_s", "cpu_total_s"]);
    let mut saved = Vec::new();
    for alg in [Algorithm::Asl, Algorithm::Pt] {
        let mut pair = Vec::new();
        for on in [true, false] {
            let opts = RunOptions {
                affinity: on,
                ..RunOptions::counting()
            };
            let out = measure_opts(alg, &rel, presets::BASELINE_MINSUP, 8, &opts);
            let cpu: u64 = out.stats.nodes().iter().map(|s| s.cpu_ns).sum();
            pair.push(out.stats.makespan_ns());
            t.row([
                alg.to_string(),
                if on { "on".into() } else { "off".to_string() },
                secs(out.stats.makespan_ns()),
                secs(cpu),
            ]);
        }
        saved.push(pair[1] as f64 / pair[0].max(1) as f64);
    }
    let mut r = Report::new(
        "ablation_affinity",
        "Affinity scheduling on/off (Sections 3.3.2, 3.4)",
        t,
    );
    r.note(format!(
        "Disabling affinity slows ASL by {:.2}x and PT by {:.2}x on the baseline.",
        saved[0], saved[1]
    ));
    r
}

/// Writing-strategy ablation at fixed algorithm: the same BUC computation
/// with depth-first vs breadth-first cell emission (the single change BPP
/// makes to RP's engine, isolated from data decomposition).
pub fn writing(ctx: &Ctx) -> Report {
    use icecube_cluster::SimCluster;
    use icecube_core::buc::{bpp_buc, buc_depth_first};
    use icecube_core::cell::CellBuf;
    use icecube_lattice::TreeTask;

    let mut spec = presets::baseline();
    spec.tuples = ctx.tuples(presets::BASELINE_TUPLES);
    let rel = spec.generate().expect("baseline preset is valid");
    let task = TreeTask::whole_lattice(rel.arity());
    let mut t = Table::new(["engine", "io_s", "file_switches", "cells"]);
    let mut ios = Vec::new();
    for depth_first in [true, false] {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::counting();
        if depth_first {
            buc_depth_first(
                &rel,
                presets::BASELINE_MINSUP,
                task,
                &mut cluster.nodes[0],
                &mut sink,
            );
        } else {
            bpp_buc(
                &rel,
                presets::BASELINE_MINSUP,
                task,
                &mut cluster.nodes[0],
                &mut sink,
            );
        }
        let s = &cluster.nodes[0].stats;
        ios.push(s.io_ns());
        t.row([
            if depth_first {
                "depth-first (BUC)"
            } else {
                "breadth-first (BPP-BUC)"
            }
            .to_string(),
            secs(s.io_ns()),
            s.file_switches.to_string(),
            s.cells_written.to_string(),
        ]);
    }
    let mut r = Report::new(
        "ablation_writing",
        "Writing strategy isolated: same BUC, different emission order (Section 3.2.2)",
        t,
    );
    r.note(format!(
        "Identical cells; depth-first pays {:.1}x the I/O purely from scattered writes.",
        ios[0] as f64 / ios[1].max(1) as f64
    ));
    r
}

/// POL's work stealing on/off over a deliberately key-skewed dataset,
/// where the boundary-based skip-list partitions are uneven.
pub fn pol_stealing(ctx: &Ctx) -> Report {
    // Skew the first (query) dimension hard so one skip-list partition
    // receives a disproportionate share of the cells.
    let mut spec = presets::online();
    spec.tuples = ctx.tuples(200_000);
    spec.skews[0] = 2.0;
    let rel = spec.generate().expect("online preset is valid");
    let dims = CuboidMask::from_dims(&[0, 1, 2, 3]);
    let mut t = Table::new(["work_stealing", "wall_s", "stolen_tasks", "imbalance"]);
    let mut walls = Vec::new();
    for stealing in [true, false] {
        let mut q = PolQuery::new(dims, 2);
        q.buffer_tuples = (8000.0 * ctx.scale).max(64.0) as usize;
        q.snapshot_every = 32;
        q.work_stealing = stealing;
        let out =
            run_pol(&rel, &q, &ClusterConfig::fast_ethernet(8)).expect("valid POL configuration");
        walls.push(out.stats.makespan_ns());
        t.row([
            stealing.to_string(),
            secs(out.stats.makespan_ns()),
            out.stolen_tasks.to_string(),
            f2(out.stats.imbalance()),
        ]);
    }
    let mut r = Report::new(
        "ablation_pol",
        "POL work stealing on/off under key skew (Section 5.3.2)",
        t,
    );
    r.note(format!(
        "Stealing {} the makespan on a skewed key space ({} vs {}).",
        if walls[0] <= walls[1] {
            "improves (or matches)"
        } else {
            "did not improve"
        },
        secs(walls[0]),
        secs(walls[1])
    ));
    r
}

/// The sequential baselines of Chapter 2 head to head: the bottom-up
/// family (BUC) prunes on the threshold; the top-down family (TopDown,
/// PipeSort, PipeHash) cannot; PipeHash is competitive only when dense.
pub fn sequential(ctx: &Ctx) -> Report {
    let workloads: [(&str, icecube_data::SyntheticSpec); 2] = [
        ("sparse", {
            let mut s = presets::baseline();
            s.tuples = ctx.tuples(40_000);
            s
        }),
        ("dense", {
            icecube_data::SyntheticSpec::uniform(
                ctx.tuples(40_000),
                vec![6, 5, 4, 4, 3, 3, 2, 2, 2],
                0x5e9,
            )
        }),
    ];
    let mut t = Table::new(["workload", "minsup", "algorithm", "wall_s", "io_s"]);
    let mut summary: Vec<String> = Vec::new();
    for (name, spec) in workloads {
        let rel = spec.generate().expect("spec is valid");
        for minsup in [1u64, 8] {
            let q = IcebergQuery::count_cube(rel.arity(), minsup);
            let mut row_times = Vec::new();
            for alg in SeqAlgorithm::all() {
                let out = run_sequential(alg, &rel, &q, &ClusterConfig::fast_ethernet(1))
                    .expect("valid sequential configuration");
                row_times.push((alg, out.clock_ns));
                t.row([
                    name.to_string(),
                    minsup.to_string(),
                    alg.to_string(),
                    secs(out.clock_ns),
                    secs(out.stats.io_ns()),
                ]);
            }
            if minsup == 8 && name == "sparse" {
                let buc = row_times
                    .iter()
                    .find(|(a, _)| *a == SeqAlgorithm::BppBuc)
                    .expect("present")
                    .1;
                let best_topdown = row_times
                    .iter()
                    .filter(|(a, _)| !a.prunes() && *a != SeqAlgorithm::Naive)
                    .map(|&(_, ns)| ns)
                    .min()
                    .expect("present");
                summary.push(format!(
                    "Sparse cube at minsup 8: BPP-BUC {} vs best top-down {} — BUC wins: {}.",
                    secs(buc),
                    secs(best_topdown),
                    buc < best_topdown
                ));
            }
        }
    }
    let mut r = Report::new(
        "ablation_sequential",
        "Sequential baselines head to head (Chapter 2)",
        t,
    );
    r.note(
        "Paper (§2.4): BUC outperforms the top-down family on iceberg thresholds thanks \
         to pruning; hash-based top-down wins only on dense data."
            .to_string(),
    );
    for line in summary {
        r.note(line);
    }
    r
}

/// The Section 4.9.2 improvements: AHT with a better hash function, ASL
/// with longest-prefix scheduling.
pub fn improvements(ctx: &Ctx) -> Report {
    // A sparse, higher-dimensional workload — where §4.9.2 expects the
    // naive MOD hash to struggle.
    let mut spec = presets::with_dims(11.min(ctx.max_dims.max(5)));
    spec.tuples = ctx.tuples(presets::BASELINE_TUPLES);
    let rel = spec.generate().expect("dims preset is valid");
    let mut t = Table::new(["variant", "wall_s", "cpu_total_s"]);
    let mut walls = Vec::new();
    let cases: [(&str, RunOptions, Algorithm); 4] = [
        ("AHT naive-mod hash", RunOptions::counting(), Algorithm::Aht),
        (
            "AHT fibonacci hash",
            RunOptions {
                aht_hash: AhtHash::Fibonacci,
                ..RunOptions::counting()
            },
            Algorithm::Aht,
        ),
        (
            "ASL first-match subsets",
            RunOptions::counting(),
            Algorithm::Asl,
        ),
        (
            "ASL longest-prefix subsets",
            RunOptions {
                asl_longest_prefix: true,
                ..RunOptions::counting()
            },
            Algorithm::Asl,
        ),
    ];
    for (label, opts, alg) in cases {
        let out = measure_opts(alg, &rel, presets::BASELINE_MINSUP, 8, &opts);
        let cpu: u64 = out.stats.nodes().iter().map(|s| s.cpu_ns).sum();
        walls.push(out.stats.makespan_ns());
        t.row([label.to_string(), secs(out.stats.makespan_ns()), secs(cpu)]);
    }
    let mut r = Report::new(
        "ablation_improvements",
        "The further improvements of Section 4.9.2",
        t,
    );
    r.note(format!(
        "AHT: fibonacci hash {} the naive MOD ({} vs {}); ASL: longest-prefix {} \
         first-match ({} vs {}).",
        if walls[1] <= walls[0] {
            "beats"
        } else {
            "does not beat"
        },
        secs(walls[1]),
        secs(walls[0]),
        if walls[3] <= walls[2] {
            "beats (or matches)"
        } else {
            "does not beat"
        },
        secs(walls[3]),
        secs(walls[2]),
    ));
    r
}
