//! The `ingest` experiment: refresh latency of incremental maintenance
//! versus a from-scratch recompute, across a batch-size sweep.
//!
//! For each batch size a [`MaintainedCube`] built over the base relation
//! ingests one append batch (the delta pass: BUC at minsup 1 over *just
//! the batch*, then a floor merge), while the scratch column re-runs the
//! full sequential build over the concatenated relation. Both costs are
//! virtual time, so the emitted CSV is bit-for-bit reproducible. The
//! `match` column asserts the maintained visible snapshot has exactly the
//! scratch cube's cells — the same oracle `tests/incremental_equivalence.rs`
//! pins byte-for-byte.

use crate::report::{f2, secs, Report, Table};
use crate::Ctx;
use icecube_cluster::ClusterConfig;
use icecube_core::{run_sequential, CubeStore, IcebergQuery, MaintainedCube, SeqAlgorithm};
use icecube_data::SyntheticSpec;

/// Dimension cardinalities of the streamed relation.
const CARDS: [u32; 3] = [12, 10, 8];

/// Batch size as a percentage of the base relation.
const BATCH_PCTS: [usize; 4] = [1, 5, 10, 25];

/// Serving minimum support.
const MINSUP: u64 = 2;

/// Refresh-latency sweep: delta maintenance vs from-scratch recompute.
pub fn ingest(ctx: &Ctx) -> Report {
    let base_rows = ctx.tuples(50_000);
    let base = SyntheticSpec::uniform(base_rows, CARDS.to_vec(), 7)
        .generate()
        .expect("uniform spec is valid");
    let cfg = ClusterConfig::fast_ethernet(1);
    let q = IcebergQuery::count_cube(base.arity(), MINSUP);
    let mut t = Table::new([
        "batch_pct",
        "base_rows",
        "batch_rows",
        "delta_s",
        "scratch_s",
        "speedup",
        "touched_cuboids",
        "inserted",
        "updated",
        "promoted",
        "match",
    ]);
    let mut all_match = true;
    let mut best_speedup = 0.0f64;
    for pct in BATCH_PCTS {
        let batch_rows = (base_rows * pct / 100).max(1);
        let batch = SyntheticSpec::uniform(batch_rows, CARDS.to_vec(), 11 + pct as u64)
            .generate()
            .expect("uniform spec is valid");
        let mut maintained = MaintainedCube::from_relation(&base, MINSUP).expect("dims > 0");
        let report = maintained
            .ingest_with(&batch, &cfg)
            .expect("append batches ingest");

        let mut concat = base.clone();
        concat.extend_from(&batch).expect("same schema");
        let scratch = run_sequential(SeqAlgorithm::BppBuc, &concat, &q, &cfg)
            .expect("scratch recompute runs");
        let scratch_store = CubeStore::from_cells(concat.arity(), MINSUP, scratch.cells);

        let mut want = Vec::new();
        let mut got = Vec::new();
        scratch_store.write_to(&mut want).expect("in-memory write");
        maintained
            .visible()
            .write_to(&mut got)
            .expect("in-memory write");
        let exact = got == want;
        all_match &= exact;
        let speedup = scratch.clock_ns as f64 / report.clock_ns.max(1) as f64;
        best_speedup = best_speedup.max(speedup);
        t.row([
            pct.to_string(),
            base_rows.to_string(),
            batch_rows.to_string(),
            secs(report.clock_ns),
            secs(scratch.clock_ns),
            f2(speedup),
            report.touched_cuboids.to_string(),
            report.inserted.to_string(),
            report.updated.to_string(),
            report.promoted.to_string(),
            if exact { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let mut r = Report::new(
        "ingest",
        "Incremental refresh latency vs from-scratch recompute: batch-size sweep",
        t,
    );
    r.note(format!(
        "Base of {base_rows} rows over cardinalities {CARDS:?}, one append batch \
         per row at {BATCH_PCTS:?}% of the base. The delta pass aggregates just \
         the batch and merges into the minsup-1 floor; scratch rebuilds the \
         concatenated relation. Byte equality of the visible snapshot: {}. Best \
         delta speedup: {}x — the merge touches only the lattice region the \
         batch projects into.",
        if all_match { "all exact" } else { "BROKEN" },
        f2(best_speedup),
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_experiment_matches_scratch_and_is_deterministic() {
        let ctx = Ctx::quick();
        let r = ingest(&ctx);
        assert_eq!(r.table.len(), BATCH_PCTS.len());
        for i in 0..r.table.len() {
            assert_eq!(r.table.cell(i, 10), "yes", "row {i} diverged from scratch");
            // At quick scale the virtual times round below the printed
            // precision, but the speedup is computed from raw nanoseconds
            // and must stay finite and positive.
            let speedup: f64 = r.table.cell(i, 5).parse().unwrap();
            assert!(speedup > 0.0, "row {i}: speedup must be positive");
            let touched: u64 = r.table.cell(i, 6).parse().unwrap();
            assert!(touched > 0, "row {i}: a batch must touch the lattice");
        }
        // Same seeds, same scale: the CSV bytes must be identical.
        let again = ingest(&ctx);
        assert_eq!(r.table.to_csv(), again.table.to_csv());
    }
}
