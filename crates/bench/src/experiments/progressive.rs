//! The `progressive` experiment: time-to-ε of progressive serving versus
//! time-to-exact convergence (DESIGN §14).
//!
//! A [`ProgressiveBuild`] folds the relation chunk by chunk; after every
//! fold the floor and its [`Progress`] are published to a [`CubeServer`]
//! and the anchor group-by is asked for an `EstimateCuboid` at the
//! serving threshold. Each CSV row records how wrong the count estimates
//! still are against the batch answer (`max_err`, the worst absolute
//! count error over the exact answer's cells) and how much virtual time
//! the folds have cost. Time-to-ε is the virtual time of the earliest
//! fold after which the error never again exceeds ε = 5% of the
//! threshold; time-to-exact is the virtual time of full convergence. The
//! gap between the two is the whole point of progressive serving: the
//! answer is *usably close* long before it is *provably done*.
//!
//! All times are virtual and every seed is fixed, so the emitted CSV is
//! bit-for-bit reproducible — CI regenerates it twice and `cmp`s.
//!
//! [`Progress`]: icecube_core::progressive::Progress

use crate::report::{f2, Report, Table};
use crate::Ctx;
use icecube_cluster::ClusterConfig;
use icecube_core::{run_sequential, CubeStore, IcebergQuery, SeqAlgorithm};
use icecube_data::SyntheticSpec;
use icecube_lattice::CuboidMask;
use icecube_online::ProgressiveBuild;
use icecube_serve::{CubeServer, Request, Response, ShardedCube};
use std::collections::BTreeMap;

/// Dimension cardinalities of the streamed relation. Deliberately dense
/// (30 anchor keys): the per-cell counts are large enough that ε = 5% of
/// the threshold is a meaningful tolerance even at test scale.
const CARDS: [u32; 3] = [5, 3, 2];

/// Simulated cluster size (chunks per step = NODES × NODES).
const NODES: usize = 4;

/// Schedule steps each node's partition is cut into; the finer the
/// chunking, the smoother the error trajectory's approach to zero.
const STEPS: usize = 12;

/// Sample size the chunk plan draws its boundaries from.
const SAMPLE: usize = 512;

/// Progressive refinement sweep: estimate error and bound width per fold.
pub fn progressive(ctx: &Ctx) -> Report {
    let rows = ctx.tuples(60_000);
    let rel = SyntheticSpec::uniform(rows, CARDS.to_vec(), 13)
        .generate()
        .expect("uniform spec is valid");
    let key_space: u32 = CARDS.iter().product();
    // Around the mean occupancy of the full group-by, so a healthy share
    // of anchor cells straddles the threshold while chunks stream in.
    let minsup = (rows as u64 / key_space as u64).max(2);
    let eps = (minsup as f64 * 0.05).max(1.0);
    let anchor = CuboidMask::full(rel.arity());
    let cfg = ClusterConfig::fast_ethernet(NODES);

    // The batch oracle: the full minsup-1 floor, thresholded on query.
    let scratch = run_sequential(
        SeqAlgorithm::BppBuc,
        &rel,
        &IcebergQuery::count_cube(rel.arity(), 1),
        &cfg,
    )
    .expect("batch build runs");
    let exact_floor = CubeStore::from_cells(rel.arity(), 1, scratch.cells);
    let exact: BTreeMap<Vec<u32>, u64> = exact_floor
        .query(anchor, minsup)
        .expect("floor answers any threshold")
        .into_iter()
        .map(|(k, a)| (k, a.count))
        .collect();

    let buffer = (rows / (NODES * STEPS)).max(20);
    let mut build =
        ProgressiveBuild::new(&rel, minsup, NODES, buffer, SAMPLE, &cfg).expect("rows > 0");
    let srv =
        CubeServer::start_progressive(ShardedCube::new(build.floor(), 2), 2, build.progress())
            .expect("floor is minsup 1");
    let h = srv.handle().expect("running");

    let mut t = Table::new([
        "chunk",
        "step",
        "owner",
        "rows_folded",
        "pct_folded",
        "virtual_ns",
        "cells_possible",
        "cells_definite",
        "max_err",
        "within_eps",
    ]);
    let mut trajectory = Vec::new();
    while let Some(fold) = build.step().expect("chunks fold cleanly") {
        srv.publish_progressive(build.floor(), build.progress())
            .expect("floor stays minsup 1");
        let resp = h
            .call(Request::EstimateCuboid {
                cuboid: anchor,
                minsup,
            })
            .expect("server running");
        let Response::Estimate {
            cells,
            rows_folded,
            rows_total,
            ..
        } = resp
        else {
            unreachable!("progressive epochs answer estimates");
        };
        let definite = cells.iter().filter(|c| c.definite).count();
        let est: BTreeMap<&[u32], u64> = cells
            .iter()
            .map(|c| (c.key.as_slice(), c.est_count))
            .collect();
        // Worst absolute count error over the batch answer's cells; a
        // key the estimate has not seen yet counts as estimated 0.
        let max_err = exact
            .iter()
            .map(|(k, &count)| est.get(k.as_slice()).copied().unwrap_or(0).abs_diff(count))
            .max()
            .unwrap_or(0);
        trajectory.push((fold.virtual_ns, max_err));
        t.row([
            fold.chunk.to_string(),
            fold.step.to_string(),
            fold.owner.to_string(),
            rows_folded.to_string(),
            f2(100.0 * rows_folded as f64 / rows_total.max(1) as f64),
            fold.virtual_ns.to_string(),
            cells.len().to_string(),
            definite.to_string(),
            max_err.to_string(),
            if (max_err as f64) <= eps { "yes" } else { "no" }.to_string(),
        ]);
    }

    let time_to_exact = build.virtual_ns();
    let time_to_eps = time_to_eps(&trajectory, eps);
    let mut floor_bytes = Vec::new();
    let mut exact_bytes = Vec::new();
    build
        .floor()
        .write_to(&mut floor_bytes)
        .expect("in-memory write");
    exact_floor
        .write_to(&mut exact_bytes)
        .expect("in-memory write");

    let mut r = Report::new(
        "progressive",
        "Progressive serving: estimate error vs virtual time, per folded chunk",
        t,
    );
    r.note(format!(
        "{rows} rows over cardinalities {CARDS:?} on {NODES} nodes, anchor \
         group-by at minsup {minsup}, ε = {eps} (5% of the threshold, floor 1). \
         Time-to-ε {time_to_eps} ns vs time-to-exact {time_to_exact} ns: the \
         estimate is within ε after {pct}% of the exact build's virtual time \
         ({speedup}x earlier). Converged floor byte-identical to the batch \
         build: {}.",
        if floor_bytes == exact_bytes {
            "yes"
        } else {
            "BROKEN"
        },
        pct = f2(100.0 * time_to_eps as f64 / time_to_exact.max(1) as f64),
        speedup = f2(time_to_exact as f64 / time_to_eps.max(1) as f64),
    ));
    r
}

/// The virtual time of the earliest fold after which the error never
/// again exceeds `eps` (convergence guarantees the suffix exists).
fn time_to_eps(trajectory: &[(u64, u64)], eps: f64) -> u64 {
    let mut at = trajectory.last().map(|&(ns, _)| ns).unwrap_or(0);
    for &(ns, err) in trajectory.iter().rev() {
        if err as f64 > eps {
            break;
        }
        at = ns;
    }
    at
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_land_within_eps_before_exactness_and_stay_deterministic() {
        let ctx = Ctx::quick();
        let r = progressive(&ctx);
        assert!(!r.table.is_empty());
        let last = r.table.len() - 1;
        assert_eq!(r.table.cell(last, 8), "0", "convergence must be exact");
        assert_eq!(r.table.cell(last, 9), "yes");
        assert!(
            r.notes
                .iter()
                .any(|n| n.contains("byte-identical to the batch build: yes")),
            "floor must converge to the batch bytes: {:?}",
            r.notes
        );
        // Time-to-ε strictly below time-to-exact: the ε-stable suffix
        // must start before the final fold.
        let eps_row = (0..r.table.len())
            .find(|&i| (i..r.table.len()).all(|j| r.table.cell(j, 9) == "yes"))
            .expect("the last row is within eps");
        assert!(eps_row < last, "estimates must be usable before exactness");
        let t_eps: u64 = r.table.cell(eps_row, 5).parse().unwrap();
        let t_exact: u64 = r.table.cell(last, 5).parse().unwrap();
        assert!(t_eps < t_exact);
        // Same seeds, same scale: the CSV bytes must be identical.
        let again = progressive(&ctx);
        assert_eq!(r.table.to_csv(), again.table.to_csv());
    }
}
