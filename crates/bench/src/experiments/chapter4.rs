//! Chapter 4: the five-algorithm evaluation (Figures 4.1–4.7).

use super::measure;
use crate::report::{f2, kb, mb, secs, Report, Table};
use crate::Ctx;
use icecube_core::recipe::{self, CubeProfile};
use icecube_core::{Algorithm, RunOutcome};
use icecube_data::presets;
use icecube_data::Relation;

const EVAL: [Algorithm; 5] = [
    Algorithm::Rp,
    Algorithm::Bpp,
    Algorithm::Asl,
    Algorithm::Pt,
    Algorithm::Aht,
];

fn baseline_rel(ctx: &Ctx) -> Relation {
    let mut spec = presets::baseline();
    spec.tuples = ctx.tuples(presets::BASELINE_TUPLES);
    spec.generate().expect("baseline preset is valid")
}

/// Figure 4.1 — load on each of 8 parallel computing nodes.
pub fn fig4_1(ctx: &Ctx) -> Report {
    let rel = baseline_rel(ctx);
    let mut headers = vec!["node".to_string()];
    headers.extend(EVAL.iter().map(|a| format!("{a}_load_s")));
    let mut t = Table::new(headers);
    let outcomes: Vec<RunOutcome> = EVAL
        .iter()
        .map(|&a| measure(a, &rel, presets::BASELINE_MINSUP, 8))
        .collect();
    for node in 0..8 {
        let mut row = vec![node.to_string()];
        row.extend(
            outcomes
                .iter()
                .map(|o| secs(o.stats.nodes()[node].busy_ns())),
        );
        t.row(row);
    }
    let mut imb = vec!["imbalance".to_string()];
    imb.extend(outcomes.iter().map(|o| f2(o.stats.imbalance())));
    t.row(imb);
    let mut r = Report::new("fig4_1", "Load balancing on 8 processors (Figure 4.1)", t);
    let get = |a: Algorithm| {
        outcomes[EVAL.iter().position(|&x| x == a).expect("in EVAL")]
            .stats
            .imbalance()
    };
    let strong = get(Algorithm::Asl)
        .max(get(Algorithm::Aht))
        .max(get(Algorithm::Pt));
    let weak = get(Algorithm::Rp).max(get(Algorithm::Bpp));
    r.note(format!(
        "Paper: ASL, AHT and PT have even load; RP and BPP vary greatly. \
         Measured max imbalance — affinity algorithms {:.2}, static algorithms {:.2}: shape {}.",
        strong,
        weak,
        if weak > strong {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    ));
    r
}

/// Figure 4.2 — speedup when varying the number of processors.
pub fn fig4_2(ctx: &Ctx) -> Report {
    let rel = baseline_rel(ctx);
    let procs = [1usize, 2, 4, 8, 16];
    let mut headers = vec!["procs".to_string()];
    for a in EVAL {
        headers.push(format!("{a}_s"));
        headers.push(format!("{a}_speedup"));
    }
    let mut t = Table::new(headers);
    let mut base: Vec<f64> = Vec::new();
    let mut at8: Vec<f64> = vec![0.0; EVAL.len()];
    for &p in &procs {
        let mut row = vec![p.to_string()];
        for (i, &a) in EVAL.iter().enumerate() {
            let out = measure(a, &rel, presets::BASELINE_MINSUP, p);
            let w = out.stats.makespan_ns() as f64 / 1e9;
            if p == 1 {
                base.push(w);
            }
            if p == 8 {
                at8[i] = w;
            }
            row.push(f2(w));
            row.push(f2(base[i] / w));
        }
        t.row(row);
    }
    let mut r = Report::new(
        "fig4_2",
        "Speedup with the number of processors (Figure 4.2)",
        t,
    );
    let pt = at8[3];
    let rp = at8[0];
    r.note(format!(
        "Paper: PT best overall, RP worst; ASL/AHT scale well past 4 procs. \
         Measured at 8 procs: PT {pt:.2}s vs RP {rp:.2}s — shape {}.",
        if pt < rp {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    ));
    r
}

/// Figure 4.3 — varying the dataset size (up to ~1M tuples).
pub fn fig4_3(ctx: &Ctx) -> Report {
    let sizes = [176_631usize, 353_262, 706_524, 1_059_786];
    let mut headers = vec!["tuples".to_string()];
    headers.extend(EVAL.iter().map(|a| format!("{a}_s")));
    let mut t = Table::new(headers);
    let mut firsts = Vec::new();
    let mut lasts = Vec::new();
    for (si, &size) in sizes.iter().enumerate() {
        let mut spec = presets::sized(ctx.tuples(size));
        spec.seed ^= si as u64; // independent draws per size
        let rel = spec.generate().expect("sized preset is valid");
        let mut row = vec![rel.len().to_string()];
        for &a in &EVAL {
            let out = measure(a, &rel, presets::BASELINE_MINSUP, 8);
            let w = out.stats.makespan_ns() as f64 / 1e9;
            if si == 0 {
                firsts.push(w);
            }
            if si + 1 == sizes.len() {
                lasts.push(w);
            }
            row.push(f2(w));
        }
        t.row(row);
    }
    let mut r = Report::new("fig4_3", "Varying the dataset size (Figure 4.3)", t);
    let growth = |i: usize| lasts[i] / firsts[i];
    r.note(format!(
        "Paper: PT and ASL grow sublinearly with tuples and dominate. Measured 6x-size \
         growth factors — PT {:.1}x, ASL {:.1}x, RP {:.1}x (shape {}).",
        growth(3),
        growth(2),
        growth(0),
        if growth(3) < 7.0 {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    ));
    r
}

/// Figure 4.4 — varying the number of cube dimensions (5..13).
pub fn fig4_4(ctx: &Ctx) -> Report {
    let dims: Vec<usize> = [5usize, 7, 9, 11, 13]
        .into_iter()
        .filter(|&d| d <= ctx.max_dims)
        .collect();
    let mut headers = vec!["dims".to_string()];
    headers.extend(EVAL.iter().map(|a| format!("{a}_s")));
    headers.extend(EVAL.iter().map(|a| format!("{a}_comm_kb")));
    let mut t = Table::new(headers);
    let top = *dims.last().expect("non-empty sweep");
    let mut at13: Vec<f64> = vec![0.0; EVAL.len()];
    let mut at5: Vec<f64> = vec![0.0; EVAL.len()];
    for &d in &dims {
        let mut spec = presets::with_dims(d);
        spec.tuples = ctx.tuples(presets::BASELINE_TUPLES);
        let rel = spec.generate().expect("dims preset is valid");
        let mut row = vec![d.to_string()];
        let mut comm = Vec::with_capacity(EVAL.len());
        for (i, &a) in EVAL.iter().enumerate() {
            // Traced run: the trace charges nothing, so the makespan is
            // the untraced one, and the communication volume falls out of
            // the recorded message events.
            let out = super::measure_traced(a, &rel, presets::BASELINE_MINSUP, 8);
            let w = out.stats.makespan_ns() as f64 / 1e9;
            if d == top {
                at13[i] = w;
            }
            if d == 5 {
                at5[i] = w;
            }
            row.push(f2(w));
            comm.push(kb(out
                .trace
                .as_ref()
                .map_or(0, icecube_trace::TraceLog::comm_volume_bytes)));
        }
        row.extend(comm);
        t.row(row);
    }
    let mut r = Report::new(
        "fig4_4",
        "Varying the number of cube dimensions (Figure 4.4)",
        t,
    );
    r.note(format!(
        "Paper: cost explodes with dimensionality; AHT scales worst, ASL falls behind the \
         BUC family, PT stays best. Measured at {top} dims: PT {:.1}s, ASL {:.1}s, AHT {:.1}s \
         (PT best: {}).",
        at13[3],
        at13[2],
        at13[4],
        if at13[3] <= at13[2] && at13[3] <= at13[4] {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    ));
    r.note(format!(
        "Paper: at small dimensionality all algorithms are close. Measured spread at 5 dims: \
         {:.2}s–{:.2}s.",
        at5.iter().cloned().fold(f64::INFINITY, f64::min),
        at5.iter().cloned().fold(0.0, f64::max)
    ));
    r
}

/// Figure 4.5 — varying the minimum support (1..32), including the output
/// sizes the paper quotes (469/86/27/11 MB for supports 1/2/4/8).
pub fn fig4_5(ctx: &Ctx) -> Report {
    let rel = baseline_rel(ctx);
    let supports = [1u64, 2, 4, 8, 16, 32];
    let mut headers = vec!["minsup".to_string()];
    headers.extend(EVAL.iter().map(|a| format!("{a}_s")));
    headers.push("output_mb".to_string());
    let mut t = Table::new(headers);
    let mut out_sizes = Vec::new();
    let mut pt_times = Vec::new();
    for &minsup in &supports {
        let mut row = vec![minsup.to_string()];
        let mut bytes = 0u64;
        for &a in &EVAL {
            let out = measure(a, &rel, minsup, 8);
            row.push(f2(out.stats.makespan_ns() as f64 / 1e9));
            if a == Algorithm::Pt {
                bytes = out.stats.total_bytes_written();
                pt_times.push(out.stats.makespan_ns() as f64 / 1e9);
            }
        }
        out_sizes.push(bytes);
        row.push(mb(bytes));
        t.row(row);
    }
    let mut r = Report::new("fig4_5", "Varying the minimum support (Figure 4.5)", t);
    r.note(format!(
        "Paper: output shrinks 469→86→27→11 MB for supports 1→2→4→8, with little further \
         pruning after 8. Measured: {}→{}→{}→{} MB (drop factor 1→2: {:.1}x vs paper's 5.5x).",
        mb(out_sizes[0]),
        mb(out_sizes[1]),
        mb(out_sizes[2]),
        mb(out_sizes[3]),
        out_sizes[0] as f64 / out_sizes[1].max(1) as f64
    ));
    r.note(format!(
        "Paper: the big wall-clock drop is between supports 1 and 2, flat after 8. \
         Measured PT: {:.2}s → {:.2}s → … → {:.2}s.",
        pt_times[0],
        pt_times[1],
        pt_times[pt_times.len() - 1]
    ));
    r
}

/// Figure 4.6 — varying the sparseness (cardinality-product exponent).
pub fn fig4_6(ctx: &Ctx) -> Report {
    let exponents = [6.0f64, 10.0, 14.0, 18.0, 22.0];
    let mut headers = vec!["card_exp".to_string()];
    headers.extend(EVAL.iter().map(|a| format!("{a}_s")));
    let mut t = Table::new(headers);
    let mut dense: Vec<f64> = vec![0.0; EVAL.len()];
    let mut sparse: Vec<f64> = vec![0.0; EVAL.len()];
    for (ei, &e) in exponents.iter().enumerate() {
        let mut spec = presets::with_sparseness(e);
        spec.tuples = ctx.tuples(presets::BASELINE_TUPLES);
        let rel = spec.generate().expect("sparseness preset is valid");
        let mut row = vec![format!("{e:.0}")];
        for (i, &a) in EVAL.iter().enumerate() {
            let out = measure(a, &rel, presets::BASELINE_MINSUP, 8);
            let w = out.stats.makespan_ns() as f64 / 1e9;
            if ei == 0 {
                dense[i] = w;
            }
            if ei + 1 == exponents.len() {
                sparse[i] = w;
            }
            row.push(f2(w));
        }
        t.row(row);
    }
    let mut r = Report::new(
        "fig4_6",
        "Varying the sparseness of the dataset (Figure 4.6)",
        t,
    );
    let aht_ok_dense = dense[4] <= dense[3] * 1.5;
    let pt_ok_sparse = sparse[3] <= sparse[2] && sparse[3] <= sparse[4];
    r.note(format!(
        "Paper: AHT/ASL shine on dense cubes (BUC-based algorithms cannot prune there); \
         the BUC family wins as the cube gets sparse. Measured dense: AHT {:.2}s vs PT \
         {:.2}s; sparse: PT {:.2}s vs ASL {:.2}s / AHT {:.2}s — shape {}.",
        dense[4],
        dense[3],
        sparse[3],
        sparse[2],
        sparse[4],
        if aht_ok_dense && pt_ok_sparse {
            "reproduced"
        } else {
            "partially reproduced"
        }
    ));
    r
}

/// Figure 4.7 — the recipe for selecting the best algorithm.
pub fn fig4_7() -> Report {
    let mut t = Table::new(["situation", "recommendation"]);
    let fmt = |choices: &[recipe::Choice]| -> String {
        choices
            .iter()
            .map(|c| match c {
                recipe::Choice::Algo(a) => a.to_string(),
                recipe::Choice::OnlinePol => "POL".to_string(),
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let rows: [(&str, CubeProfile); 5] = [
        (
            "dense cube (< 1e8 cells)",
            CubeProfile {
                dims: 8,
                expected_total_cells: 1e6,
                memory_constrained: false,
                online: false,
            },
        ),
        (
            "small dimensionality (< 5)",
            CubeProfile {
                dims: 4,
                expected_total_cells: 1e6,
                memory_constrained: false,
                online: false,
            },
        ),
        (
            "high dimensionality",
            CubeProfile {
                dims: 13,
                expected_total_cells: 1e12,
                memory_constrained: false,
                online: false,
            },
        ),
        (
            "less memory occupation",
            CubeProfile {
                dims: 9,
                expected_total_cells: 1e12,
                memory_constrained: true,
                online: false,
            },
        ),
        (
            "online support",
            CubeProfile {
                dims: 12,
                expected_total_cells: 1e12,
                memory_constrained: false,
                online: true,
            },
        ),
    ];
    for (label, profile) in rows {
        t.row([label.to_string(), fmt(&recipe::recommend(&profile))]);
    }
    let otherwise = CubeProfile {
        dims: 9,
        expected_total_cells: 1e10,
        memory_constrained: false,
        online: false,
    };
    t.row([
        "otherwise (default)".to_string(),
        fmt(&recipe::recommend(&otherwise)),
    ]);
    let mut r = Report::new(
        "fig4_7",
        "Recipe for selecting the best algorithm (Figure 4.7)",
        t,
    );
    r.note("Encodes the paper's Figure 4.7 decision table; PT is the default.".to_string());
    r
}
