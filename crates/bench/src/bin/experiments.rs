//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <id>... [--scale f] [--out dir] [--backend sim|native|both]
//! experiments all [--scale f] [--out dir]
//! experiments list
//! ```
//!
//! Each experiment prints an aligned table plus shape notes comparing the
//! measurement against the paper's reported behaviour, and writes
//! `<id>.csv` into the output directory (default `results/`).
//!
//! Argument parsing is typed: every malformed invocation maps to a
//! [`CliError`] variant, printed with the usage string on a non-zero
//! exit — the binary never panics on bad input.

use icecube_bench::experiments::{all_ids, run_by_id};
use icecube_bench::{BackendSel, Ctx};
use std::fmt;
use std::process::ExitCode;

/// Counting allocator so the `bench` experiment can report each kernel's
/// peak host-memory footprint (see `icecube_bench::alloc_track`).
#[global_allocator]
static ALLOC: icecube_bench::alloc_track::CountingAlloc = icecube_bench::alloc_track::CountingAlloc;

const USAGE: &str = "usage: experiments <id>...|all|list [--scale f] [--max-dims d] [--out dir] \
     [--backend sim|native|both] [--smoke]";

/// Every way an invocation can be malformed.
#[derive(Debug, PartialEq, Eq)]
enum CliError {
    /// A flag that isn't in the grammar.
    UnknownFlag(String),
    /// A flag that takes a value appeared last.
    MissingValue(&'static str),
    /// A flag value that doesn't parse or is out of range.
    InvalidValue {
        /// The flag.
        flag: &'static str,
        /// What was given.
        given: String,
        /// What would have been accepted.
        want: &'static str,
    },
    /// An experiment id `list` doesn't print.
    UnknownExperiment(String),
    /// No experiment ids at all.
    NoExperiments,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag {flag}"),
            CliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            CliError::InvalidValue { flag, given, want } => {
                write!(f, "{flag} got {given:?}; expected {want}")
            }
            CliError::UnknownExperiment(id) => {
                write!(f, "unknown experiment id: {id} (try `experiments list`)")
            }
            CliError::NoExperiments => write!(f, "no experiment ids given"),
        }
    }
}

/// A parsed invocation: which experiments to run, with what context.
#[derive(Debug)]
struct Cli {
    ids: Vec<String>,
    ctx: Ctx,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, CliError> {
    let mut ids: Vec<String> = Vec::new();
    let mut ctx = Ctx::default();
    let mut list = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let given = args.get(i).ok_or(CliError::MissingValue("--scale"))?;
                let v = given.parse::<f64>().ok().filter(|v| *v > 0.0 && *v <= 1.0);
                ctx.scale = v.ok_or_else(|| CliError::InvalidValue {
                    flag: "--scale",
                    given: given.clone(),
                    want: "a number in (0, 1]",
                })?;
            }
            "--max-dims" => {
                i += 1;
                let given = args.get(i).ok_or(CliError::MissingValue("--max-dims"))?;
                let v = given.parse::<usize>().map_err(|_| CliError::InvalidValue {
                    flag: "--max-dims",
                    given: given.clone(),
                    want: "an integer",
                })?;
                ctx.max_dims = v.clamp(5, 13);
            }
            "--out" => {
                i += 1;
                let given = args.get(i).ok_or(CliError::MissingValue("--out"))?;
                ctx.out_dir = given.into();
            }
            "--backend" => {
                i += 1;
                let given = args.get(i).ok_or(CliError::MissingValue("--backend"))?;
                ctx.backend = BackendSel::parse(given).ok_or_else(|| CliError::InvalidValue {
                    flag: "--backend",
                    given: given.clone(),
                    want: "sim, native, or both",
                })?;
            }
            "--smoke" => {
                // CI's structural check: tiny datasets, one sample per
                // wall-clock benchmark — seconds, not minutes.
                ctx.smoke = true;
                ctx.scale = ctx.scale.min(0.02);
            }
            "list" => list = true,
            "all" => ids.extend(all_ids().into_iter().map(String::from)),
            other if other.starts_with('-') => {
                return Err(CliError::UnknownFlag(other.to_string()));
            }
            other => {
                if !all_ids().contains(&other) {
                    return Err(CliError::UnknownExperiment(other.to_string()));
                }
                ids.push(other.to_string());
            }
        }
        i += 1;
    }
    if ids.is_empty() && !list {
        return Err(CliError::NoExperiments);
    }
    Ok(Cli { ids, ctx, list })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("experiments: {e}");
            eprintln!("{USAGE}");
            eprintln!("ids: {}", all_ids().join(" "));
            return ExitCode::FAILURE;
        }
    };
    if cli.list {
        for id in all_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if (cli.ctx.scale - 1.0).abs() > 1e-9 {
        println!(
            "(running at scale {} of the paper's dataset sizes)\n",
            cli.ctx.scale
        );
    }
    for id in cli.ids {
        let started = std::time::Instant::now();
        let Some(report) = run_by_id(&id, &cli.ctx) else {
            // Unreachable after parse-time validation, but stay graceful.
            eprintln!("unknown experiment id: {id}");
            return ExitCode::FAILURE;
        };
        println!("{}", report.render());
        match report.save_csv(&cli.ctx.out_dir) {
            Ok(path) => println!(
                "  (csv: {}; took {:.1?})\n",
                path.display(),
                started.elapsed()
            ),
            Err(e) => eprintln!("  (csv write failed: {e})"),
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn valid_invocations_parse() {
        let cli = parse_args(&argv("bench --scale 0.5 --backend native")).unwrap();
        assert_eq!(cli.ids, ["bench"]);
        assert_eq!(cli.ctx.scale, 0.5);
        assert_eq!(cli.ctx.backend, BackendSel::Native);
        let cli = parse_args(&argv("all --smoke")).unwrap();
        assert!(cli.ids.len() > 5);
        assert!(cli.ctx.smoke);
        assert_eq!(cli.ctx.backend, BackendSel::Both);
        let cli = parse_args(&argv("list")).unwrap();
        assert!(cli.list);
    }

    #[test]
    fn unknown_backend_is_a_typed_error() {
        assert_eq!(
            parse_args(&argv("bench --backend warp")).unwrap_err(),
            CliError::InvalidValue {
                flag: "--backend",
                given: "warp".to_string(),
                want: "sim, native, or both",
            }
        );
        assert_eq!(
            parse_args(&argv("bench --backend")).unwrap_err(),
            CliError::MissingValue("--backend")
        );
    }

    #[test]
    fn malformed_invocations_are_typed_errors() {
        assert_eq!(parse_args(&argv("")).unwrap_err(), CliError::NoExperiments);
        assert_eq!(
            parse_args(&argv("--frobnicate")).unwrap_err(),
            CliError::UnknownFlag("--frobnicate".to_string())
        );
        assert_eq!(
            parse_args(&argv("bench --scale")).unwrap_err(),
            CliError::MissingValue("--scale")
        );
        assert_eq!(
            parse_args(&argv("bench --scale 2.0")).unwrap_err(),
            CliError::InvalidValue {
                flag: "--scale",
                given: "2.0".to_string(),
                want: "a number in (0, 1]",
            }
        );
        assert_eq!(
            parse_args(&argv("fig9_99")).unwrap_err(),
            CliError::UnknownExperiment("fig9_99".to_string())
        );
        // Errors render without panicking.
        for e in [
            CliError::UnknownFlag("--x".into()),
            CliError::MissingValue("--out"),
            CliError::NoExperiments,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
