//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <id>... [--scale f] [--out dir]
//! experiments all [--scale f] [--out dir]
//! experiments list
//! ```
//!
//! Each experiment prints an aligned table plus shape notes comparing the
//! measurement against the paper's reported behaviour, and writes
//! `<id>.csv` into the output directory (default `results/`).

use icecube_bench::experiments::{all_ids, run_by_id};
use icecube_bench::Ctx;
use std::process::ExitCode;

/// Counting allocator so the `bench` experiment can report each kernel's
/// peak host-memory footprint (see `icecube_bench::alloc_track`).
#[global_allocator]
static ALLOC: icecube_bench::alloc_track::CountingAlloc = icecube_bench::alloc_track::CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut ctx = Ctx::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--scale needs a number");
                    return ExitCode::FAILURE;
                };
                if !(v > 0.0 && v <= 1.0) {
                    eprintln!("--scale must be in (0, 1]");
                    return ExitCode::FAILURE;
                }
                ctx.scale = v;
            }
            "--max-dims" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--max-dims needs an integer");
                    return ExitCode::FAILURE;
                };
                ctx.max_dims = v.clamp(5, 13);
            }
            "--out" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                ctx.out_dir = v.into();
            }
            "--smoke" => {
                // CI's structural check: tiny datasets, one sample per
                // wall-clock benchmark — seconds, not minutes.
                ctx.smoke = true;
                ctx.scale = ctx.scale.min(0.02);
            }
            "list" => {
                for id in all_ids() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(all_ids().into_iter().map(String::from)),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments <id>...|all|list [--scale f] [--max-dims d] [--out dir] [--smoke]"
        );
        eprintln!("ids: {}", all_ids().join(" "));
        return ExitCode::FAILURE;
    }
    if (ctx.scale - 1.0).abs() > 1e-9 {
        println!(
            "(running at scale {} of the paper's dataset sizes)\n",
            ctx.scale
        );
    }
    for id in ids {
        let started = std::time::Instant::now();
        let Some(report) = run_by_id(&id, &ctx) else {
            eprintln!("unknown experiment id: {id}");
            return ExitCode::FAILURE;
        };
        println!("{}", report.render());
        match report.save_csv(&ctx.out_dir) {
            Ok(path) => println!(
                "  (csv: {}; took {:.1?})\n",
                path.display(),
                started.elapsed()
            ),
            Err(e) => eprintln!("  (csv write failed: {e})"),
        }
    }
    ExitCode::SUCCESS
}
