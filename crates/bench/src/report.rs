//! Result tables: aligned console rendering plus CSV export.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rectangular result table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column), for tests.
    pub fn cell(&self, r: usize, c: usize) -> &str {
        &self.rows[r][c]
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Serializes as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let line = |cells: &[String]| -> String {
            cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        };
        out.push_str(&line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// One experiment's output: a title, the data, and commentary comparing
/// the measured shape with the paper's.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment identifier (e.g. `fig4_2`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The result table.
    pub table: Table,
    /// Shape checks and notes (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates a report shell.
    pub fn new(id: &str, title: &str, table: Table) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            table,
            notes: Vec::new(),
        }
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders to the console format.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} — {} ==\n{}",
            self.id,
            self.title,
            self.table.render()
        );
        for n in &self.notes {
            out.push_str("  * ");
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// Writes `<id>.csv` into `dir` (created if needed).
    pub fn save_csv(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.table.to_csv())?;
        Ok(path)
    }
}

/// Formats virtual nanoseconds as seconds with 3 decimals.
pub fn secs(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e9)
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats bytes as megabytes with 1 decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

/// Formats bytes as kilobytes with 1 decimal (control-message volumes
/// are far below a megabyte).
pub fn kb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["procs", "seconds"]);
        t.row(["2", "10.000"]);
        t.row(["16", "1.250"]);
        let r = t.render();
        assert!(r.contains("procs  seconds"));
        assert!(r.lines().count() == 4);
        assert_eq!(t.cell(1, 0), "16");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_is_enforced() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn report_saves_csv() {
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        let r = Report::new("test_report", "Testing", t);
        let dir = std::env::temp_dir().join("icecube-report-test");
        let path = r.save_csv(&dir).unwrap();
        assert!(std::fs::read_to_string(path).unwrap().starts_with("x\n1"));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1_500_000_000), "1.500");
        assert_eq!(f2(12.345), "12.35");
        assert_eq!(mb(86_000_000), "86.0");
    }
}
