//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate keeps the
//! workspace's `harness = false` benchmarks compiling and runnable with the
//! API subset they use (`benchmark_group`, `bench_with_input`,
//! `bench_function`, `Bencher::iter`, `black_box`, the `criterion_group!` /
//! `criterion_main!` macros). Measurement is deliberately simple: one
//! warm-up call, then `sample_size` timed calls, reporting the mean — good
//! enough for the relative comparisons the benches make, with none of
//! upstream's statistics.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Bench registry entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }

    /// Measures one standalone function.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&id.into(), 10, &mut f);
    }
}

/// A named set of measurements sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the warm-up here is always one call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness times exactly
    /// `sample_size` calls instead of a wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Number of timed calls per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `f` with one parameter value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Measures one function inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

/// A benchmark's name plus parameter, e.g. `counting_sort/dim4`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Joins a function name and a parameter into one identifier.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

/// Timing driver passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    calls: u64,
}

impl Bencher {
    /// Times `f`: one untimed warm-up call, then `samples` timed calls.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total += start.elapsed();
        self.calls += self.samples as u64;
    }
}

/// Raw per-call durations from [`sample`], for callers that need an
/// actual statistic (the wall-clock benchmark harness wants medians,
/// which shrug off the occasional scheduling hiccup that skews a mean).
#[derive(Debug, Clone)]
pub struct Samples {
    times: Vec<Duration>,
}

impl Samples {
    /// The individual call durations, in measurement order.
    pub fn times(&self) -> &[Duration] {
        &self.times
    }

    /// The median call duration (lower middle for even counts;
    /// `Duration::ZERO` when empty).
    pub fn median(&self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.times.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) / 2]
    }
}

/// Times `f` individually `samples` times after one untimed warm-up call,
/// returning every duration rather than printing an aggregate.
pub fn sample<R>(samples: usize, mut f: impl FnMut() -> R) -> Samples {
    black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    Samples { times }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        calls: 0,
    };
    f(&mut b);
    if b.calls > 0 {
        let mean = b.total / b.calls as u32;
        println!("  {id}: {mean:?}/iter over {} iters", b.calls);
    } else {
        println!("  {id}: no measurement (closure never called iter)");
    }
}

/// Bundles bench functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs bench binaries with --test; a
            // smoke invocation is fine either way, so no filtering.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_returns_one_duration_per_call() {
        let mut calls = 0u64;
        let s = sample(5, || calls += 1);
        assert_eq!(calls, 6, "one warm-up plus five samples");
        assert_eq!(s.times().len(), 5);
        let med = s.median();
        let mut sorted = s.times().to_vec();
        sorted.sort_unstable();
        assert_eq!(med, sorted[2]);
    }

    #[test]
    fn empty_samples_have_zero_median() {
        let s = sample(0, || ());
        assert_eq!(s.median(), Duration::ZERO);
    }

    #[test]
    fn bencher_counts_calls() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        g.finish();
        assert_eq!(calls, 4, "one warm-up plus three samples");
    }
}
