//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of `rand`'s 0.8 API its members actually use:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and [`seq::SliceRandom`]. The
//! generator behind `SmallRng` is xoshiro256++ seeded through SplitMix64 —
//! the same family upstream `SmallRng` uses on 64-bit targets — so the
//! statistical quality assumptions of the workload generators (Zipf
//! frequency tests, skip-list level draws) hold. Streams are *not*
//! bit-compatible with upstream `rand`; every consumer in this repo only
//! relies on determinism-given-seed, which this crate provides.

/// A source of random 64-bit words. The object-safe core trait.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types `gen_range` can sample over.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Debiased multiply-shift (Lemire); span is nonzero.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut l = m as u64;
                if l < span {
                    let t = span.wrapping_neg() % span;
                    while l < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        l = m as u64;
                    }
                }
                let off = (m >> 64) as u64;
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )+};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

/// User-facing extension methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same
    /// family upstream `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    /// Upstream's default generator; here the same engine as [`SmallRng`].
    pub type StdRng = SmallRng;
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values drawn in 1000 tries");
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn low_bits_are_balanced() {
        // The skip list derives levels from trailing zeros of gen::<u32>.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut zero_low_bits = 0;
        for _ in 0..4096 {
            if rng.gen::<u32>() & 1 == 0 {
                zero_low_bits += 1;
            }
        }
        assert!((1800..2300).contains(&zero_low_bits), "got {zero_low_bits}");
    }
}
