//! The interleaving explorer: runs a test body repeatedly, replaying the
//! recorded schedule prefix and branching depth-first at the last choice
//! point, until the space is exhausted or a budget is hit.

use crate::sched::{self, ModelAbort, Path, Sched};
use std::sync::Arc;

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum number of distinct schedules (complete executions) to
    /// explore before stopping.
    pub max_schedules: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_schedules: 1000,
        }
    }
}

/// What one exploration found.
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct interleavings completely executed.
    pub schedules: usize,
    /// The first failing schedule's diagnosis (deadlock, lost wake-up
    /// surfacing as deadlock, a panicked thread, nondeterminism), if any.
    pub failure: Option<String>,
    /// Whether the whole bounded schedule space was explored (`false`
    /// when the budget stopped exploration early or a failure did).
    pub exhausted: bool,
}

/// Explores interleavings of `f` depth-first. `f` runs once per
/// schedule as model thread 0; threads it spawns through
/// [`crate::thread`] join the controlled schedule. Stops at the first
/// failing schedule.
///
/// # Panics
/// Panics when called from inside a model run (nesting is unsupported).
pub fn explore<F>(budget: Budget, f: F) -> Report
where
    F: Fn() + Sync,
{
    assert!(
        sched::current().is_none(),
        "nested model exploration is not supported"
    );
    let mut path = Path::default();
    let mut schedules = 0usize;
    loop {
        let sched = Arc::new(Sched::new(path));
        let body = &f;
        std::thread::scope(|scope| {
            let root_sched = Arc::clone(&sched);
            scope.spawn(move || {
                sched::bind(Arc::clone(&root_sched), 0);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
                if let Err(payload) = result {
                    if !payload.is::<ModelAbort>() {
                        root_sched.fail(format!(
                            "model thread 0 panicked: {}",
                            panic_message(payload.as_ref())
                        ));
                    }
                }
                root_sched.thread_finished(0);
                sched::unbind();
            });
            sched.wait_done();
        });
        schedules += 1;
        let (explored_path, failure, _ops) = sched.into_results();
        if failure.is_some() {
            return Report {
                schedules,
                failure,
                exhausted: false,
            };
        }
        path = explored_path;
        if !path.advance() {
            return Report {
                schedules,
                failure: None,
                exhausted: true,
            };
        }
        if schedules >= budget.max_schedules {
            return Report {
                schedules,
                failure: None,
                exhausted: false,
            };
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
