//! Schedule-controlled sync primitives: `Mutex`, `Condvar`, `mpsc`
//! channels and atomics with the `std::sync` API surface.
//!
//! Objects constructed on a model thread register with that run's
//! scheduler and park/wake through it; objects constructed outside a
//! model delegate to `std` (pass-through mode). Atomics decide per
//! operation instead, so even pre-built shared state interleaves
//! correctly once a model run touches it.

use crate::sched::{self, Block, Sched};
use std::collections::VecDeque;
use std::sync::Arc as StdArc;
use std::sync::{LockResult, PoisonError};

pub use std::sync::Arc;

/// Yields the scheduler if the calling thread is a model thread.
fn op_hook() {
    if let Some((sched, me)) = sched::current() {
        sched.yield_point(me);
    }
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Mirror of [`std::sync::Mutex`]; a model-scheduler blocking point
/// inside a model run.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    model: Option<(StdArc<Sched>, usize)>,
    data: std::sync::Mutex<T>,
}

/// Mirror of [`std::sync::MutexGuard`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex; registers with the active model run, if any.
    pub fn new(value: T) -> Self {
        Mutex {
            model: sched::current().map(|(s, _)| {
                let id = s.register_mutex();
                (s, id)
            }),
            data: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, parking in the model scheduler (or `std`)
    /// while it is held elsewhere.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let (Some((sched, id)), Some((_, me))) = (&self.model, sched::current()) {
            // The model grant guarantees exclusivity; the inner std lock
            // is then uncontended (its owner released it before the
            // grant) and is held only to produce a real guard.
            sched.mutex_lock(me, *id);
        }
        match self.data.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(poison) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(poison.into_inner()),
            })),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live until drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live until drop")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock first so that whichever thread the model
        // grant picks next finds it free.
        drop(self.inner.take());
        if let Some((sched, id)) = &self.lock.model {
            match sched::current() {
                Some((_, me)) if !std::thread::panicking() => sched.mutex_unlock(me, *id),
                // Unwinding (model teardown) or foreign thread: release
                // without re-entering the scheduler.
                _ => sched.mutex_unlock_quiet(*id),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Mirror of [`std::sync::Condvar`]. Faithful to real condvars: a
/// notification with no waiter parked is lost — the ingredient of the
/// lost-wake-up bugs the model exists to catch.
#[derive(Debug, Default)]
pub struct Condvar {
    model: Option<(StdArc<Sched>, usize)>,
    std: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condvar; registers with the active model run, if any.
    pub fn new() -> Self {
        Condvar {
            model: sched::current().map(|(s, _)| {
                let id = s.register_condvar();
                (s, id)
            }),
            std: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard`'s mutex and parks until notified;
    /// re-acquires the mutex before returning. (No spurious wake-ups in
    /// model mode; absence only removes schedules, never hides a bug.)
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match (&self.model, sched::current()) {
            (Some((sched, cv_id)), Some((_, me))) => {
                let mutex = guard.lock;
                let Some((_, mutex_id)) = &mutex.model else {
                    panic!("model Condvar paired with a non-model Mutex");
                };
                // Drop the std guard without running the model unlock in
                // MutexGuard::drop — condvar_wait moves the model-level
                // ownership itself, atomically with parking.
                drop(guard.inner.take());
                std::mem::forget(guard);
                sched.condvar_wait(me, *cv_id, *mutex_id);
                mutex.lock()
            }
            _ => {
                let inner = guard.inner.take().expect("guard live until drop");
                let lock = guard.lock;
                std::mem::forget(guard);
                match self.std.wait(inner) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                    }),
                    Err(poison) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(poison.into_inner()),
                    })),
                }
            }
        }
    }

    /// Wakes one parked waiter (the longest-waiting, in model mode).
    pub fn notify_one(&self) {
        match (&self.model, sched::current()) {
            (Some((sched, cv_id)), Some((_, me))) => sched.condvar_notify(me, *cv_id, false),
            _ => self.std.notify_one(),
        }
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        match (&self.model, sched::current()) {
            (Some((sched, cv_id)), Some((_, me))) => sched.condvar_notify(me, *cv_id, true),
            _ => self.std.notify_all(),
        }
    }
}

// ---------------------------------------------------------------------
// mpsc channels
// ---------------------------------------------------------------------

/// Mirror of [`std::sync::mpsc`] (the unbounded-channel subset the
/// workspace uses), with model-scheduled blocking.
pub mod mpsc {
    use super::{sched, Block, Sched, StdArc, VecDeque};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    /// Shared state of one channel. Message storage is plain data behind
    /// a std mutex; *blocking* goes through the model scheduler (model
    /// mode) or the std condvar (pass-through mode).
    #[derive(Debug)]
    struct Chan<T> {
        model: Option<(StdArc<Sched>, usize)>,
        queue: std::sync::Mutex<VecDeque<T>>,
        available: std::sync::Condvar,
        senders: AtomicUsize,
        rx_alive: AtomicBool,
    }

    impl<T> Chan<T> {
        // The channel's own queue mutex is uncontended-by-construction in
        // model mode and held only for O(1) operations in pass-through
        // mode, so poisoning can only follow a panic mid-push, which std
        // VecDeque cannot produce; recovering the guard is safe.
        fn queue(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }

    /// Sending half; cloneable like [`std::sync::mpsc::Sender`].
    #[derive(Debug)]
    pub struct Sender<T> {
        chan: StdArc<Chan<T>>,
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T> {
        chan: StdArc<Chan<T>>,
    }

    /// Mirror of [`std::sync::mpsc::SendError`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Mirror of [`std::sync::mpsc::RecvError`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Mirror of [`std::sync::mpsc::TryRecvError`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now, but senders remain connected.
        Empty,
        /// No message queued and every sender has disconnected.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a channel with no receiver")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded channel; registers with the active model
    /// run, if any.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let chan = StdArc::new(Chan {
            model: sched::current().map(|(s, _)| {
                let id = s.register_channel();
                (s, id)
            }),
            queue: std::sync::Mutex::new(VecDeque::new()),
            available: std::sync::Condvar::new(),
            senders: AtomicUsize::new(1),
            rx_alive: AtomicBool::new(true),
        });
        (
            Sender {
                chan: StdArc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                chan: StdArc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake receivers so they observe
                // disconnection — a schedule-relevant event (this is the
                // edge `CubeServer::shutdown` relies on).
                self.chan.available.notify_all();
                if let Some((sched, id)) = &self.chan.model {
                    match sched::current() {
                        Some((_, me)) if !std::thread::panicking() => {
                            sched.channel_event(me, *id);
                        }
                        _ => sched.channel_event_quiet(*id),
                    }
                }
            }
        }
    }

    impl<T> Sender<T> {
        /// Queues `value`, failing if the receiver is gone. Never blocks
        /// (the channel is unbounded) but is a model yield point.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if !self.chan.rx_alive.load(Ordering::SeqCst) {
                return Err(SendError(value));
            }
            self.chan.queue().push_back(value);
            self.chan.available.notify_one();
            if let Some((sched, id)) = &self.chan.model {
                if let Some((_, me)) = sched::current() {
                    sched.channel_event(me, *id);
                } else {
                    sched.channel_event_quiet(*id);
                }
            }
            Ok(())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.rx_alive.store(false, Ordering::SeqCst);
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            match (&self.chan.model, sched::current()) {
                (Some((sched, id)), Some((_, me))) => loop {
                    sched.yield_point(me);
                    {
                        let mut q = self.chan.queue();
                        if let Some(v) = q.pop_front() {
                            return Ok(v);
                        }
                    }
                    if self.chan.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvError);
                    }
                    // Park until a send or a final sender-drop. The
                    // check-then-park pair is atomic at the model level:
                    // no other model thread runs in between.
                    sched.block(me, Block::Recv(*id));
                },
                _ => {
                    let mut q = self.chan.queue();
                    loop {
                        if let Some(v) = q.pop_front() {
                            return Ok(v);
                        }
                        if self.chan.senders.load(Ordering::SeqCst) == 0 {
                            return Err(RecvError);
                        }
                        q = match self.chan.available.wait(q) {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                    }
                }
            }
        }

        /// Non-blocking receive (a model yield point).
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            if self.chan.model.is_some() {
                super::op_hook();
            }
            if let Some(v) = self.chan.queue().pop_front() {
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

/// Atomics whose every operation is a model yield point.
///
/// The model explores *sequentially consistent* interleavings only: the
/// `Ordering` argument is accepted for API compatibility but does not
/// add weak-memory behaviors (see the crate docs for why that gap is
/// acceptable here).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates the atomic with an initial value.
                pub const fn new(v: $ty) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                /// Loads the value (model yield point).
                pub fn load(&self, order: Ordering) -> $ty {
                    super::op_hook();
                    self.inner.load(order)
                }

                /// Stores a value (model yield point).
                pub fn store(&self, v: $ty, order: Ordering) {
                    super::op_hook();
                    self.inner.store(v, order);
                }

                /// Swaps the value (model yield point).
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    super::op_hook();
                    self.inner.swap(v, order)
                }

                /// Compare-exchange (model yield point).
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    super::op_hook();
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    macro_rules! model_atomic_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Adds, returning the previous value (model yield point).
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    super::op_hook();
                    self.inner.fetch_add(v, order)
                }

                /// Subtracts, returning the previous value (model yield
                /// point).
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    super::op_hook();
                    self.inner.fetch_sub(v, order)
                }
            }
        };
    }

    model_atomic!(
        /// Model-scheduled mirror of [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        AtomicU64,
        u64
    );
    model_atomic!(
        /// Model-scheduled mirror of [`std::sync::atomic::AtomicU32`].
        AtomicU32,
        AtomicU32,
        u32
    );
    model_atomic!(
        /// Model-scheduled mirror of [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        AtomicUsize,
        usize
    );
    model_atomic!(
        /// Model-scheduled mirror of [`std::sync::atomic::AtomicBool`].
        AtomicBool,
        AtomicBool,
        bool
    );
    model_atomic_arith!(AtomicU64, u64);
    model_atomic_arith!(AtomicU32, u32);
    model_atomic_arith!(AtomicUsize, usize);
}
