//! A vendored miniature of the `loom` model checker.
//!
//! The real `loom` crate is unavailable (this environment has no
//! crates.io access), so this shim reimplements the part the workspace
//! needs: *schedule-controlled* versions of the sync primitives
//! `icecube-serve` builds on — [`sync::Mutex`], [`sync::Condvar`],
//! [`sync::mpsc`] channels, [`sync::atomic`] integers, [`thread`]
//! spawning/joining and a virtual [`time::Instant`] — plus an explorer
//! ([`model::explore`]) that runs a closed test body repeatedly,
//! enumerating distinct thread interleavings depth-first until the
//! bounded schedule space is exhausted or a budget is reached.
//!
//! # How scheduling works
//!
//! Inside [`model::explore`] every model thread is a real OS thread, but
//! a cooperative scheduler lets exactly one run at a time. Each sync
//! operation is a *yield point*: the running thread re-enters the
//! scheduler, which picks who runs next. When more than one thread is
//! runnable the pick is a recorded *choice point*; the explorer replays
//! the recorded prefix and advances the last choice like a depth-first
//! search, so every completed execution is a distinct interleaving.
//! Blocking operations (locking a held mutex, `recv` on an empty
//! channel, `Condvar::wait`, joining a live thread) park the thread in
//! the scheduler until the unblocking event. If no thread is runnable
//! while some are still parked, the execution is reported as a
//! **deadlock** (this is also how a lost wake-up surfaces: the waiter
//! parks forever). A panic on any model thread — e.g. a violated oracle
//! assertion — fails the execution with that panic's message.
//!
//! # Fidelity limits (vs. real loom)
//!
//! - Interleavings are *sequentially consistent*: atomics ignore their
//!   `Ordering` argument, so weak-memory reorderings are not explored.
//!   The workspace's own `relaxed-ordering` lint (see `icecube-check`)
//!   is the compensating control for that gap.
//! - Threads interleave only at sync operations; plain data races on
//!   unsynchronized memory are out of scope (rustc's `Send`/`Sync`
//!   checking covers those).
//! - `Condvar::notify_one` wakes the longest-waiting thread rather than
//!   branching over every waiter.
//!
//! # Pass-through mode
//!
//! Outside [`model::explore`] every primitive delegates to its `std`
//! twin, so a crate compiled against these types (the `icecube_loom`
//! feature of `icecube-serve`) behaves identically in production code
//! paths and ordinary tests.

pub mod model;
mod sched;
pub mod sync;
pub mod thread;
pub mod time;

pub use model::{explore, Budget, Report};

/// Runs `f` under the model explorer with default budget, panicking on
/// the first failing interleaving — the `loom::model` entry point shape.
pub fn model<F>(f: F)
where
    F: Fn() + Sync,
{
    let report = model::explore(Budget::default(), f);
    if let Some(failure) = report.failure {
        panic!(
            "model check failed after {} schedules: {failure}",
            report.schedules
        );
    }
}
