//! Virtual time for model runs: `Instant::now` inside a model ticks a
//! deterministic per-run counter instead of reading the wall clock, so
//! explored schedules stay replayable. Outside a model it is the real
//! [`std::time::Instant`].

pub use std::time::Duration;

/// Mirror of [`std::time::Instant`] (the `now`/`elapsed` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instant {
    kind: Kind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Real(std::time::Instant),
    /// Virtual nanoseconds on the owning model run's clock.
    Virtual(u64),
}

impl Instant {
    /// The current instant: one virtual tick inside a model run, the
    /// wall clock outside.
    pub fn now() -> Instant {
        match crate::sched::current() {
            Some((sched, _)) => Instant {
                kind: Kind::Virtual(sched.tick()),
            },
            None => Instant {
                kind: Kind::Real(std::time::Instant::now()),
            },
        }
    }

    /// Time elapsed since this instant was taken.
    pub fn elapsed(&self) -> Duration {
        match self.kind {
            Kind::Real(at) => at.elapsed(),
            Kind::Virtual(at) => match crate::sched::current() {
                Some((sched, _)) => Duration::from_nanos(sched.tick().saturating_sub(at)),
                // A virtual instant read outside its model run has no
                // meaningful reference clock; report zero.
                None => Duration::ZERO,
            },
        }
    }
}
