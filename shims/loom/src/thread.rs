//! Model-aware thread spawning: `std::thread`'s `spawn`/`Builder`/
//! `JoinHandle` shapes, scheduled cooperatively inside a model run and
//! delegating to `std` outside one.

use crate::sched::{self, ModelAbort, Sched};
use std::sync::Arc;

/// Mirror of [`std::thread::Builder`] (the subset the workspace uses).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// A builder with no name set.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Names the thread (shown in model deadlock reports).
    #[must_use]
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawns the thread. Inside a model run the child becomes a model
    /// thread and first runs when the scheduler picks it.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let name = self.name.unwrap_or_else(|| "<unnamed>".to_string());
        match sched::current() {
            None => {
                let inner = std::thread::Builder::new()
                    .name(name)
                    .spawn(move || Some(f()))?;
                Ok(JoinHandle { inner, model: None })
            }
            Some((sched, _me)) => {
                let tid = sched.register_thread(name.clone());
                let child_sched = Arc::clone(&sched);
                let inner = std::thread::Builder::new().name(name).spawn(move || {
                    sched::bind(Arc::clone(&child_sched), tid);
                    child_sched.first_turn(tid);
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    let out = match result {
                        Ok(v) => Some(v),
                        Err(payload) => {
                            if !payload.is::<ModelAbort>() {
                                child_sched.fail(format!(
                                    "model thread {tid} panicked: {}",
                                    panic_message(payload.as_ref())
                                ));
                            }
                            None
                        }
                    };
                    child_sched.thread_finished(tid);
                    sched::unbind();
                    out
                })?;
                Ok(JoinHandle {
                    inner,
                    model: Some((sched, tid)),
                })
            }
        }
    }
}

/// Handle to a spawned thread, mirroring [`std::thread::JoinHandle`].
///
/// Both modes store the OS handle as `JoinHandle<Option<T>>`: the model
/// wrapper catches panics itself and yields `None`, which `join` maps
/// back to the `Err` a std join would have produced.
#[derive(Debug)]
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    model: Option<(Arc<Sched>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish — a scheduler-visible blocking
    /// point inside a model run — and returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sched, target)) = &self.model {
            // Wait at the model level first so the scheduler can explore
            // join orderings; the OS-level join below then returns
            // promptly. During panic unwind (model teardown) the target
            // is being woken by the failure broadcast, so skip the model
            // wait rather than re-entering the scheduler.
            if let Some((_, me)) = sched::current() {
                if !std::thread::panicking() {
                    sched.join(me, *target);
                }
            }
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(
                Box::new("model thread panicked or was torn down".to_string())
                    as Box<dyn std::any::Any + Send>,
            ),
            Err(e) => Err(e),
        }
    }
}

/// Spawns an unnamed thread (std-compatible free function).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match Builder::new().spawn(f) {
        Ok(h) => h,
        Err(e) => panic!("failed to spawn thread: {e}"),
    }
}

/// A plain model yield point: lets the scheduler switch threads. No-op
/// beyond `std::thread::yield_now` outside a model run.
pub fn yield_now() {
    if let Some((sched, me)) = sched::current() {
        sched.yield_point(me);
    } else {
        std::thread::yield_now();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
