//! The cooperative scheduler behind [`crate::model::explore`].
//!
//! One `Sched` exists per execution. Model threads are real OS threads
//! gated on a single condvar: exactly one thread is `current` at a time,
//! everyone else waits. Every sync primitive calls back into the
//! scheduler at its yield points; picks between multiple runnable
//! threads are recorded into a [`Path`] so the explorer can replay a
//! prefix and branch depth-first.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex};

/// Why a parked thread cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Block {
    /// Waiting to acquire model mutex `id`.
    Mutex(usize),
    /// Waiting on model condvar `id`.
    Condvar(usize),
    /// Waiting for a message (or sender disconnect) on model channel `id`.
    Recv(usize),
    /// Waiting for thread `tid` to finish.
    Join(usize),
}

impl Block {
    fn describe(self) -> String {
        match self {
            Block::Mutex(id) => format!("locking mutex #{id}"),
            Block::Condvar(id) => format!("waiting on condvar #{id}"),
            Block::Recv(id) => format!("receiving on channel #{id}"),
            Block::Join(tid) => format!("joining thread {tid}"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked(Block),
    Finished,
}

#[derive(Debug)]
struct ThreadInfo {
    name: String,
    state: Run,
}

/// One decision between several runnable threads, with DFS bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    options: Vec<usize>,
    index: usize,
}

/// The recorded schedule of one execution: the sequence of choices made
/// wherever more than one thread was runnable.
#[derive(Debug, Clone, Default)]
pub(crate) struct Path {
    choices: Vec<Choice>,
}

impl Path {
    /// Advances to the depth-first next schedule. Returns `false` when
    /// the whole bounded space has been explored.
    pub(crate) fn advance(&mut self) -> bool {
        while let Some(last) = self.choices.last_mut() {
            if last.index + 1 < last.options.len() {
                last.index += 1;
                return true;
            }
            self.choices.pop();
        }
        false
    }
}

#[derive(Debug)]
struct State {
    threads: Vec<ThreadInfo>,
    current: usize,
    /// Next index into `path.choices` during replay/extension.
    step: usize,
    path: Path,
    /// Total yield points taken, as a runaway-schedule guard.
    ops: usize,
    failure: Option<String>,
    completed: bool,
    /// Owner of each registered model mutex.
    mutex_owner: Vec<Option<usize>>,
    /// FIFO wait queues of each registered model condvar.
    cv_waiters: Vec<Vec<usize>>,
    /// Virtual clock, ticked by `time::Instant::now`.
    clock: u64,
    next_channel: usize,
}

/// Hard cap on yield points in a single execution; hitting it means the
/// test body itself loops unboundedly and exploring it is meaningless.
const MAX_OPS: usize = 1_000_000;

/// The per-execution scheduler. Public within the crate; user code never
/// sees it.
#[derive(Debug)]
pub(crate) struct Sched {
    state: Mutex<State>,
    cv: Condvar,
}

/// Panic payload used to unwind model threads when an execution is torn
/// down after a failure. The thread wrapper in [`crate::thread`] and the
/// explorer recognize it and do not treat it as a user panic.
pub(crate) struct ModelAbort;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler and model-thread id bound to this OS thread, if any.
pub(crate) fn current() -> Option<(Arc<Sched>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Binds this OS thread to a scheduler as model thread `tid`.
pub(crate) fn bind(sched: Arc<Sched>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

/// Unbinds this OS thread from its scheduler.
pub(crate) fn unbind() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

impl Sched {
    /// A fresh execution replaying (then extending) `path`.
    pub(crate) fn new(path: Path) -> Self {
        Sched {
            state: Mutex::new(State {
                threads: vec![ThreadInfo {
                    name: "main".to_string(),
                    state: Run::Runnable,
                }],
                current: 0,
                step: 0,
                path,
                ops: 0,
                failure: None,
                completed: false,
                mutex_owner: Vec::new(),
                cv_waiters: Vec::new(),
                clock: 0,
                next_channel: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // The scheduler's own mutex cannot be poisoned meaningfully: any
        // panic on a model thread is routed through `fail`, and the state
        // stays structurally valid.
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Records a failure, wakes every parked thread so the execution can
    /// tear down, and marks the run complete for the explorer.
    pub(crate) fn fail(&self, msg: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        self.cv.notify_all();
    }

    fn fail_locked(st: &mut State, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
    }

    /// Picks the next thread to run. Must be called with the state lock
    /// held, after the caller has updated its own `Run` state.
    fn pick_next(&self, st: &mut State) {
        if st.failure.is_some() {
            // Tearing down: wake everyone so they can abort; once every
            // thread has finished, `thread_finished` flips `completed`.
            self.cv.notify_all();
            return;
        }
        st.ops += 1;
        if st.ops > MAX_OPS {
            Self::fail_locked(st, format!("schedule exceeded {MAX_OPS} yield points"));
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.state == Run::Finished) {
                st.completed = true;
            } else {
                let parked: Vec<String> = st
                    .threads
                    .iter()
                    .filter_map(|t| match t.state {
                        Run::Blocked(b) => Some(format!("'{}' {}", t.name, b.describe())),
                        _ => None,
                    })
                    .collect();
                Self::fail_locked(
                    st,
                    format!(
                        "deadlock: no runnable thread; parked: {}",
                        parked.join(", ")
                    ),
                );
            }
            self.cv.notify_all();
            return;
        }
        let next = if runnable.len() == 1 {
            runnable[0]
        } else {
            let step = st.step;
            st.step += 1;
            if step < st.path.choices.len() {
                let choice = &st.path.choices[step];
                if choice.options != runnable {
                    // Replay divergence means the test body itself is
                    // nondeterministic (wall clock, ambient randomness, …)
                    // and exploration results would be meaningless.
                    let (expected, got) = (choice.options.clone(), runnable.clone());
                    Self::fail_locked(
                        st,
                        format!(
                            "nondeterministic test body: replay step {step} saw runnable \
                             {got:?}, recorded {expected:?}"
                        ),
                    );
                    self.cv.notify_all();
                    return;
                }
                choice.options[choice.index]
            } else {
                st.path.choices.push(Choice {
                    options: runnable.clone(),
                    index: 0,
                });
                runnable[0]
            }
        };
        st.current = next;
        self.cv.notify_all();
    }

    /// Parks the calling model thread until it is scheduled again, then
    /// returns. Aborts (unwinds) the thread if the execution failed.
    fn wait_for_turn(&self, mut st: std::sync::MutexGuard<'_, State>, me: usize) {
        loop {
            if st.failure.is_some() {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.current == me && st.threads[me].state == Run::Runnable {
                return;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// A plain yield point: give the scheduler a chance to switch.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock();
        if st.failure.is_some() {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        self.pick_next(&mut st);
        self.wait_for_turn(st, me);
    }

    /// Parks the calling thread as `block` until another thread unblocks
    /// it (and the scheduler picks it).
    pub(crate) fn block(&self, me: usize, block: Block) {
        let mut st = self.lock();
        if st.failure.is_some() {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st.threads[me].state = Run::Blocked(block);
        self.pick_next(&mut st);
        self.wait_for_turn(st, me);
    }

    /// Marks every thread parked as `block` runnable again.
    fn unblock_matching(st: &mut State, block: Block) {
        for t in &mut st.threads {
            if t.state == Run::Blocked(block) {
                t.state = Run::Runnable;
            }
        }
    }

    // ---- threads ------------------------------------------------------

    /// Registers a new runnable model thread, returning its id. The
    /// spawning thread keeps running; the child first runs when picked.
    pub(crate) fn register_thread(&self, name: String) -> usize {
        let mut st = self.lock();
        st.threads.push(ThreadInfo {
            name,
            state: Run::Runnable,
        });
        st.threads.len() - 1
    }

    /// First entry of a freshly spawned model thread: park until picked.
    pub(crate) fn first_turn(&self, me: usize) {
        let st = self.lock();
        self.wait_for_turn(st, me);
    }

    /// Marks `me` finished, wakes joiners, and hands off the CPU. Never
    /// unwinds — it runs on the way out of the thread wrapper.
    pub(crate) fn thread_finished(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me].state = Run::Finished;
        Self::unblock_matching(&mut st, Block::Join(me));
        if st.failure.is_some() {
            if st.threads.iter().all(|t| t.state == Run::Finished) {
                st.completed = true;
            }
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st);
    }

    /// Parks until thread `tid` finishes.
    pub(crate) fn join(&self, me: usize, tid: usize) {
        loop {
            {
                let st = self.lock();
                if st.threads[tid].state == Run::Finished {
                    break;
                }
            }
            self.block(me, Block::Join(tid));
        }
        self.yield_point(me);
    }

    /// True once every model thread has finished (failure teardown
    /// included). The explorer polls this through `wait_done`.
    pub(crate) fn wait_done(&self) {
        let mut st = self.lock();
        loop {
            let all_finished = st.threads.iter().all(|t| t.state == Run::Finished);
            if st.completed || all_finished {
                st.completed = true;
                return;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Consumes the run's results: (path, failure, yield-point count).
    pub(crate) fn into_results(self: Arc<Self>) -> (Path, Option<String>, usize) {
        let mut st = self.lock();
        (std::mem::take(&mut st.path), st.failure.take(), st.ops)
    }

    // ---- mutexes ------------------------------------------------------

    /// Registers a model mutex, returning its id.
    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutex_owner.push(None);
        st.mutex_owner.len() - 1
    }

    /// Acquires model mutex `id` for `me`, parking while it is held.
    pub(crate) fn mutex_lock(&self, me: usize, id: usize) {
        self.yield_point(me);
        loop {
            {
                let mut st = self.lock();
                if st.mutex_owner[id].is_none() {
                    st.mutex_owner[id] = Some(me);
                    return;
                }
            }
            self.block(me, Block::Mutex(id));
        }
    }

    /// Releases model mutex `id`, waking every thread parked on it.
    pub(crate) fn mutex_unlock(&self, me: usize, id: usize) {
        {
            let mut st = self.lock();
            debug_assert_eq!(st.mutex_owner[id], Some(me), "unlock by non-owner");
            st.mutex_owner[id] = None;
            Self::unblock_matching(&mut st, Block::Mutex(id));
        }
        self.yield_point(me);
    }

    /// Releases `id` without yielding — used during panic teardown where
    /// re-entering the scheduler could double-panic.
    pub(crate) fn mutex_unlock_quiet(&self, id: usize) {
        let mut st = self.lock();
        st.mutex_owner[id] = None;
        Self::unblock_matching(&mut st, Block::Mutex(id));
        self.cv.notify_all();
    }

    // ---- condvars -----------------------------------------------------

    /// Registers a model condvar, returning its id.
    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.lock();
        st.cv_waiters.push(Vec::new());
        st.cv_waiters.len() - 1
    }

    /// Atomically releases mutex `mutex_id` and parks on condvar `cv_id`.
    /// The caller re-acquires the mutex (via its sync-layer `lock`) after
    /// this returns. Faithful to real condvars: a notification sent while
    /// nobody waits is lost.
    pub(crate) fn condvar_wait(&self, me: usize, cv_id: usize, mutex_id: usize) {
        let mut st = self.lock();
        st.cv_waiters[cv_id].push(me);
        st.mutex_owner[mutex_id] = None;
        Self::unblock_matching(&mut st, Block::Mutex(mutex_id));
        st.threads[me].state = Run::Blocked(Block::Condvar(cv_id));
        self.pick_next(&mut st);
        self.wait_for_turn(st, me);
    }

    /// Wakes the longest-waiting thread on condvar `cv_id`, if any.
    pub(crate) fn condvar_notify(&self, me: usize, cv_id: usize, all: bool) {
        {
            let mut st = self.lock();
            let woken: Vec<usize> = if all {
                std::mem::take(&mut st.cv_waiters[cv_id])
            } else if st.cv_waiters[cv_id].is_empty() {
                Vec::new()
            } else {
                vec![st.cv_waiters[cv_id].remove(0)]
            };
            for tid in woken {
                if st.threads[tid].state == Run::Blocked(Block::Condvar(cv_id)) {
                    st.threads[tid].state = Run::Runnable;
                }
            }
        }
        self.yield_point(me);
    }

    // ---- channels -----------------------------------------------------

    /// Registers a model channel, returning its id. Message storage lives
    /// in the channel object; the scheduler only tracks parked receivers.
    pub(crate) fn register_channel(&self) -> usize {
        let mut st = self.lock();
        st.next_channel += 1;
        st.next_channel - 1
    }

    /// Wakes threads parked on channel `id` (message arrived or all
    /// senders disconnected).
    pub(crate) fn channel_event(&self, me: usize, id: usize) {
        {
            let mut st = self.lock();
            Self::unblock_matching(&mut st, Block::Recv(id));
        }
        self.yield_point(me);
    }

    /// As [`Sched::channel_event`] but without yielding, for drop paths
    /// running during panic unwind.
    pub(crate) fn channel_event_quiet(&self, id: usize) {
        let mut st = self.lock();
        Self::unblock_matching(&mut st, Block::Recv(id));
        self.cv.notify_all();
    }

    // ---- virtual time -------------------------------------------------

    /// Ticks and returns the virtual clock (nanoseconds).
    pub(crate) fn tick(&self) -> u64 {
        let mut st = self.lock();
        st.clock += 1;
        st.clock
    }
}
