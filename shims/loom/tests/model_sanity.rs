//! Sanity checks for the mini-loom scheduler: exclusivity, channel
//! semantics, interleaving counts, deadlock detection, pass-through.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{mpsc, Arc, Mutex};
use loom::{explore, Budget};

#[test]
fn mutex_is_exclusive_in_every_schedule() {
    let report = explore(Budget { max_schedules: 500 }, || {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                loom::thread::spawn(move || {
                    let mut g = m.lock().expect("model mutex never poisoned here");
                    let seen = *g;
                    // If exclusion were broken, interleaved increments
                    // would lose updates and the final assert would fail
                    // in some schedule.
                    *g = seen + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker exits cleanly");
        }
        assert_eq!(*m.lock().expect("uncontended"), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.schedules >= 2, "two orders at least");
}

#[test]
fn explores_multiple_distinct_interleavings() {
    let counter = AtomicUsize::new(0);
    let report = explore(Budget { max_schedules: 200 }, || {
        counter.fetch_add(1, Ordering::SeqCst);
        let a = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                loom::thread::spawn(move || {
                    a.fetch_add(1, Ordering::SeqCst);
                    a.load(Ordering::SeqCst)
                })
            })
            .collect();
        for h in handles {
            h.join().expect("clean exit");
        }
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.schedules > 1,
        "atomic ops must branch the schedule: {}",
        report.schedules
    );
    assert_eq!(counter.load(Ordering::SeqCst), report.schedules);
}

#[test]
fn channel_delivers_everything_and_disconnects() {
    let report = explore(Budget { max_schedules: 400 }, || {
        let (tx, rx) = mpsc::channel::<u32>();
        let sender = loom::thread::spawn(move || {
            tx.send(1).expect("receiver alive");
            tx.send(2).expect("receiver alive");
            // tx drops here: receiver must see both values, then Err.
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2], "FIFO, nothing lost");
        sender.join().expect("clean exit");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhausted, "small space fully explored");
}

#[test]
fn deadlock_is_detected_and_reported() {
    // Two threads locking two mutexes in opposite orders: some schedule
    // must deadlock, and the explorer must say so rather than hang.
    let report = explore(Budget { max_schedules: 500 }, || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            let _ga = a2.lock().expect("model");
            let _gb = b2.lock().expect("model");
        });
        {
            let _gb = b.lock().expect("model");
            let _ga = a.lock().expect("model");
        }
        let _ = t.join();
    });
    let failure = report.failure.expect("opposite lock orders must deadlock");
    assert!(
        failure.contains("deadlock"),
        "diagnosis names it: {failure}"
    );
}

#[test]
fn panics_inside_the_model_become_failures() {
    let report = explore(Budget { max_schedules: 10 }, || {
        let t = loom::thread::spawn(|| panic!("oracle divergence!"));
        let _ = t.join();
    });
    let failure = report.failure.expect("panic must fail the schedule");
    assert!(failure.contains("oracle divergence"), "{failure}");
}

#[test]
fn pass_through_mode_behaves_like_std() {
    // Outside `explore`, the primitives are plain std: no scheduler, no
    // model bookkeeping, normal blocking.
    let m = Mutex::new(5u32);
    *m.lock().expect("std semantics") += 1;
    assert_eq!(*m.lock().expect("std semantics"), 6);

    let (tx, rx) = mpsc::channel();
    let t = loom::thread::spawn(move || tx.send(99).expect("receiver alive"));
    assert_eq!(rx.recv(), Ok(99));
    t.join().expect("clean exit");
    assert_eq!(rx.recv(), Err(mpsc::RecvError));

    let i = loom::time::Instant::now();
    assert!(i.elapsed() < std::time::Duration::from_secs(120));
}
