//! The lost-wake-up regression the concurrency checker exists to catch:
//! a toy worker pool with a deliberately racy wait is flagged by the
//! model, and the corrected version passes the same exploration.

use loom::sync::{Arc, Condvar, Mutex};
use loom::{explore, Budget};
use std::collections::VecDeque;

struct ToyPool {
    queue: Mutex<VecDeque<u32>>,
    ready: Condvar,
}

/// The bug: the worker checks the queue, *releases the lock*, and only
/// then waits. A submit landing in that window notifies nobody — the
/// notification is lost and the worker parks forever.
fn buggy_worker(pool: &ToyPool) -> Option<u32> {
    {
        let mut q = pool.queue.lock().expect("model mutex");
        if let Some(job) = q.pop_front() {
            return Some(job);
        }
    } // <-- lock released: submit + notify can land right here
    let q = pool.queue.lock().expect("model mutex");
    let mut q = pool.ready.wait(q).expect("model condvar");
    q.pop_front()
}

/// The fix: re-check the predicate under the same guard the wait
/// atomically releases, in a loop.
fn correct_worker(pool: &ToyPool) -> Option<u32> {
    let mut q = pool.queue.lock().expect("model mutex");
    loop {
        if let Some(job) = q.pop_front() {
            return Some(job);
        }
        q = pool.ready.wait(q).expect("model condvar");
    }
}

fn run_pool(worker: fn(&ToyPool) -> Option<u32>) -> loom::Report {
    explore(Budget { max_schedules: 500 }, move || {
        let pool = Arc::new(ToyPool {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        let consumer = {
            let pool = Arc::clone(&pool);
            loom::thread::spawn(move || worker(&pool))
        };
        {
            let mut q = pool.queue.lock().expect("model mutex");
            q.push_back(7);
        }
        pool.ready.notify_one();
        let got = consumer.join().expect("worker must terminate");
        assert_eq!(got, Some(7), "the submitted job must be served");
    })
}

#[test]
fn injected_lost_wakeup_is_caught() {
    let report = run_pool(buggy_worker);
    let failure = report
        .failure
        .expect("some schedule must lose the wake-up and deadlock");
    assert!(
        failure.contains("deadlock") && failure.contains("condvar"),
        "diagnosis shows the parked waiter: {failure}"
    );
}

#[test]
fn corrected_pool_survives_the_same_exploration() {
    let report = run_pool(correct_worker);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhausted, "small space fully explored");
    assert!(report.schedules >= 3, "got {}", report.schedules);
}
