//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of proptest's API the workspace uses: range and tuple
//! strategies, [`collection::vec`], [`strategy::Just`], `prop_map` /
//! `prop_flat_map`, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros. Differences from upstream, by design:
//!
//! * **Deterministic**: each `proptest!` test derives its RNG seed from the
//!   test's module path and name, so failures reproduce across runs with no
//!   persistence files.
//! * **No shrinking**: a failing case reports its inputs (via the panic
//!   message) but is not minimized.
//!
//! Every consumer in this repo treats property tests as seeded randomized
//! tests, so both trade-offs are acceptable.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Smallest allowed length.
        pub lo: usize,
        /// Largest allowed length (inclusive).
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (rather than unwinding) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)*), left, right),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let __strategies = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __dbg = format!(concat!($("\n  ", stringify!($arg), " = {:?}",)+), $(&$arg,)+);
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body; ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}\ninputs (no shrinking):{}",
                        stringify!($name), __case + 1, __config.cases, e, __dbg,
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_respect_bounds(
            n in 3u32..17,
            v in crate::collection::vec(-5i64..6, 0..9),
            fixed in crate::collection::vec(0u8..2, 4),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!(v.len() < 9);
            prop_assert_eq!(fixed.len(), 4);
            for x in &v {
                prop_assert!((-5..6).contains(x), "value {} out of range", x);
            }
        }

        #[test]
        fn maps_compose(pair in (1usize..4).prop_flat_map(|d| {
            (Just(d), crate::collection::vec(0u32..10, d))
        }).prop_map(|(d, v)| (d, v.len()))) {
            prop_assert_eq!(pair.0, pair.1);
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #[allow(unreachable_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
