//! The runner types behind the `proptest!` macro: configuration, the
//! per-test deterministic RNG, and the case-failure error.

use std::fmt;

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled inputs per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier integration
        // properties (full cube computations per case) fast while still
        // exploring a meaningful input space.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (produced by the `prop_assert!` family).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The generator the macro hands to strategies: xoshiro256++ seeded from a
/// hash of the test's fully qualified name, so every run of a given test
/// sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary label (the macro passes the test path).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label picks the SplitMix64 starting point.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform draw from `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}
