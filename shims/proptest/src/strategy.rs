//! Value-generation strategies: ranges, tuples, `Just`, and the `prop_map`
//! / `prop_flat_map` combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from every generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = TestRng::deterministic("ends");
        let (mut lo, mut hi) = (false, false);
        for _ in 0..200 {
            match Strategy::generate(&(0u32..=1), &mut rng) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = TestRng::deterministic("neg");
        let mut saw_negative = false;
        for _ in 0..100 {
            let v = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }
}
